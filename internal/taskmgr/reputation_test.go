package taskmgr

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/relation"
)

func TestWorkerReputationSeparatesSpammers(t *testing.T) {
	// A quarter of the crowd are spammers who answer "no" to everything;
	// honest workers are highly accurate, so spammers disagree with the
	// majority on "cat" images.
	m, clock := newRig(t, catOracle, crowd.Config{
		Workers: 12, MeanSkill: 0.97, SkillStd: 0.01, SpamFraction: 0.25, Seed: 9,
	}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 5, BatchSize: 1, PriceCents: 1,
		Linger: time.Minute, UseCache: true})
	var mu sync.Mutex
	done := 0
	for i := 0; i < 40; i++ {
		img := fmt.Sprintf("cat-%d.png", i)
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(img)},
			Done: func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	}
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 40 })

	quals := m.WorkerQualities()
	if len(quals) == 0 {
		t.Fatal("no worker reputation recorded")
	}
	// With spammers present there must be a visible agreement gap.
	low, high := quals[0], quals[len(quals)-1]
	if low.Agreement >= 0.6 {
		t.Fatalf("worst worker agreement %.2f; expected a clear spammer", low.Agreement)
	}
	if high.Agreement <= 0.8 {
		t.Fatalf("best worker agreement %.2f; expected honest majority", high.Agreement)
	}
	// The blocklist identifies low-agreement workers.
	blocked := m.BlockedWorkers(5, 0.6)
	if len(blocked) == 0 {
		t.Fatal("no workers blocked despite spammers")
	}
	for _, id := range blocked {
		for _, wq := range quals {
			if wq.ID == id && wq.Agreement >= 0.6 {
				t.Fatalf("honest worker %s blocked (%.2f)", id, wq.Agreement)
			}
		}
	}
}

func TestBlocklistImprovesAccuracy(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{
		Workers: 12, MeanSkill: 0.97, SkillStd: 0.01, SpamFraction: 0.3, Seed: 4,
	}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 3, BatchSize: 1, PriceCents: 1,
		Linger: time.Minute, UseCache: true})

	runBatch := func(offset, n int) (correct int) {
		var mu sync.Mutex
		done := 0
		results := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			img := fmt.Sprintf("cat-%d.png", offset+i)
			m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(img)},
				Done: func(out Outcome) {
					mu.Lock()
					results[img] = out.Value.Truthy()
					done++
					mu.Unlock()
				}})
		}
		runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == n })
		for _, keep := range results {
			if keep { // every image is a cat: true is correct
				correct++
			}
		}
		return correct
	}

	// Phase 1 builds reputations (and suffers spam).
	before := runBatch(0, 60)
	// Phase 2 with the blocklist on: spammers are re-dispatched away.
	m.EnableBlocklist(10, 0.6)
	after := runBatch(1000, 60)
	if after < before {
		t.Fatalf("blocklist made things worse: %d/60 -> %d/60", before, after)
	}
	if after < 55 {
		t.Fatalf("blocklisted accuracy still low: %d/60", after)
	}
}

// TestRankingSpammerDetected: boolean-vote reputation never sees a
// worker who only answers Order responses, so a spammer submitting
// arbitrary permutations used to be invisible. Scoring rankings against
// the Bradley–Terry consensus pins their pair agreement near one half —
// low enough for the same blocklist thresholds that catch vote spammers
// — while honest workers stay near one.
func TestRankingSpammerDetected(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{}, 0)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	honest := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3, "e": 4, "f": 5}
	// Junk permutations, different every HIT, like a worker dragging
	// items at random.
	junk := []map[string]int{
		{"a": 3, "b": 5, "c": 0, "d": 4, "e": 1, "f": 2},
		{"a": 5, "b": 2, "c": 4, "d": 0, "e": 3, "f": 1},
		{"a": 1, "b": 4, "c": 5, "d": 2, "e": 0, "f": 3},
		{"a": 4, "b": 0, "c": 2, "d": 5, "e": 1, "f": 0},
	}
	for _, j := range junk {
		m.noteWorkerRankings(keys, []Ranking{
			{WorkerID: "honest-1", Rank: honest},
			{WorkerID: "honest-2", Rank: honest},
			{WorkerID: "honest-3", Rank: honest},
			{WorkerID: "spammer", Rank: j},
		})
	}
	quals := m.WorkerQualities()
	if len(quals) != 4 {
		t.Fatalf("worker qualities = %d, want 4", len(quals))
	}
	if quals[0].ID != "spammer" {
		t.Fatalf("lowest agreement is %s (%.2f), want the ranking spammer", quals[0].ID, quals[0].Agreement)
	}
	if quals[0].Agreement >= 0.7 {
		t.Fatalf("spammer pair agreement %.2f; junk permutations should hover near 0.5", quals[0].Agreement)
	}
	for _, wq := range quals[1:] {
		if wq.Agreement <= 0.9 {
			t.Fatalf("honest worker %s at %.2f; consensus agreement should stay near 1", wq.ID, wq.Agreement)
		}
	}
	blocked := m.BlockedWorkers(10, 0.7)
	if len(blocked) != 1 || blocked[0] != "spammer" {
		t.Fatalf("blocked = %v, want exactly the ranking spammer", blocked)
	}
}

// TestStarvedHITStillResolves: when a blocklist (or empty pool) leaves a
// HIT without eligible workers, the outcome must still be delivered —
// with partial votes if some arrived, or an error if none ever will.
func TestStarvedHITStillResolves(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 3, MeanSkill: 0.97, Seed: 2}, 0)
	// Block every worker before any reputation exists by rejecting all.
	m.market.SetWorkerFilter(func(string) bool { return false })
	def := filterDef()
	var mu sync.Mutex
	var got *Outcome
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage("cat-x.png")},
		Done: func(o Outcome) { mu.Lock(); got = &o; mu.Unlock() }})
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return got != nil })
	if got.Err == nil {
		t.Fatal("fully starved HIT must resolve with an error")
	}
}

// TestPartiallyStarvedHITUsesAvailableVotes: if some assignments land
// before the rest become impossible, the majority uses what arrived.
func TestPartiallyStarvedHITUsesAvailableVotes(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 2, MeanSkill: 0.99, SkillStd: 0.001, Seed: 3}, 0)
	def := filterDef()
	def.Assignments = 3 // only 2 workers exist; the third assignment cycles
	allowed := 0
	var amu sync.Mutex
	m.market.SetWorkerFilter(func(string) bool {
		amu.Lock()
		defer amu.Unlock()
		allowed++
		return allowed <= 2 // first two claims pass, rest rejected forever
	})
	var mu sync.Mutex
	var got *Outcome
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage("cat-x.png")},
		Done: func(o Outcome) { mu.Lock(); got = &o; mu.Unlock() }})
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return got != nil })
	if got.Err != nil {
		t.Fatalf("partial HIT should resolve with votes, got error: %v", got.Err)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %d, want the 2 that arrived", len(got.Answers))
	}
	if !got.Value.Bool() {
		t.Fatal("2 accurate votes on a cat should majority to true")
	}
}
