package taskmgr

import (
	"sort"

	"repro/internal/hit"
	"repro/internal/infer"
	"repro/internal/store"
)

// WorkerQuality is Qurk's view of one worker, inferred purely from how
// often their answers agree with the majority vote — the signal the CIDR
// companion paper proposes for detecting spammers without gold data.
type WorkerQuality struct {
	ID        string
	Votes     int64
	Agreed    int64
	Agreement float64
}

type workerRecord struct {
	votes  int64
	agreed int64
}

// noteWorkerVotes credits or strikes every worker who answered key on
// this HIT, based on the majority outcome. It takes the dedicated
// reputation lock (never m.mu) so the marketplace's worker filter can
// consult reputations while the manager is posting under m.mu.
func (m *Manager) noteWorkerVotes(byWorker []hit.Answers, key string, majority bool) {
	j := m.getJournal()
	m.repMu.Lock()
	if m.workers == nil {
		m.workers = make(map[string]*workerRecord)
	}
	type vote struct {
		worker string
		agreed bool
	}
	var votes []vote
	for _, wa := range byWorker {
		v, ok := wa.Values[key]
		if !ok || wa.WorkerID == "" {
			continue
		}
		rec, ok := m.workers[wa.WorkerID]
		if !ok {
			rec = &workerRecord{}
			m.workers[wa.WorkerID] = rec
		}
		rec.votes++
		agreed := v.Truthy() == majority
		if agreed {
			rec.agreed++
		}
		if j != nil {
			votes = append(votes, vote{worker: wa.WorkerID, agreed: agreed})
		}
	}
	m.repMu.Unlock()
	// Journal outside repMu: the marketplace's worker filter takes repMu
	// from inside marketplace calls and must never wait on persistence.
	for _, v := range votes {
		j.Append(store.Record{Kind: store.KindReputation, Worker: v.worker, Pass: v.agreed})
	}
}

// noteWorkerRankings scores Order-response workers against the
// Bradley–Terry consensus over a comparison HIT's rankings: every item
// pair a worker orders like the consensus counts as an agreeing vote,
// every inversion as a strike. Boolean-vote reputation alone cannot see
// these workers — a spammer submitting arbitrary permutations never
// answers a yes/no question — but against the consensus their pair
// agreement hovers near one half, low enough for the same blocklist
// thresholds that catch vote spammers.
func (m *Manager) noteWorkerRankings(keys []string, rankings []Ranking) {
	if len(keys) < 2 || len(rankings) == 0 {
		return
	}
	ords := make([]infer.Ordering, 0, len(rankings))
	for _, r := range rankings {
		ords = append(ords, infer.Ordering{Worker: r.WorkerID, Rank: r.Rank})
	}
	var bt infer.BradleyTerry
	consensus := bt.Consensus(keys, ords)
	j := m.getJournal()
	type credit struct {
		worker        string
		agreed, total int
	}
	var credits []credit
	m.repMu.Lock()
	if m.workers == nil {
		m.workers = make(map[string]*workerRecord)
	}
	for _, o := range ords {
		if o.Worker == "" {
			continue
		}
		agreed, total := infer.PairAgreement(consensus, o)
		if total == 0 {
			continue
		}
		rec, ok := m.workers[o.Worker]
		if !ok {
			rec = &workerRecord{}
			m.workers[o.Worker] = rec
		}
		rec.votes += int64(total)
		rec.agreed += int64(agreed)
		if j != nil {
			credits = append(credits, credit{worker: o.Worker, agreed: agreed, total: total})
		}
	}
	m.repMu.Unlock()
	// Journal outside repMu, as aggregate totals — replay folds them
	// into the same per-worker counters noteWorkerVotes feeds.
	for _, c := range credits {
		j.Append(store.Record{Kind: store.KindReputationSum, Worker: c.worker, N: int64(c.total), M: int64(c.agreed)})
	}
}

// RestoreReputation folds replayed vote totals into a worker's record —
// the durable half of spam defense: a worker blocked in one engine run
// stays blocked in the next (once EnableBlocklist is re-armed) without
// re-paying for the bad votes that exposed them.
func (m *Manager) RestoreReputation(worker string, votes, agreed int64) {
	if worker == "" || votes <= 0 {
		return
	}
	m.repMu.Lock()
	defer m.repMu.Unlock()
	if m.workers == nil {
		m.workers = make(map[string]*workerRecord)
	}
	rec, ok := m.workers[worker]
	if !ok {
		rec = &workerRecord{}
		m.workers[worker] = rec
	}
	rec.votes += votes
	rec.agreed += agreed
}

// WorkerQualities reports the agreement-based reputation of every
// worker seen so far, sorted by ascending agreement (suspects first).
func (m *Manager) WorkerQualities() []WorkerQuality {
	m.repMu.Lock()
	defer m.repMu.Unlock()
	out := make([]WorkerQuality, 0, len(m.workers))
	for id, rec := range m.workers {
		wq := WorkerQuality{ID: id, Votes: rec.votes, Agreed: rec.agreed}
		if rec.votes > 0 {
			wq.Agreement = float64(rec.agreed) / float64(rec.votes)
		}
		out = append(out, wq)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Agreement != out[j].Agreement {
			return out[i].Agreement < out[j].Agreement
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// EnableBlocklist rejects assignments from workers whose majority
// agreement has fallen below minAgreement after at least minVotes
// boolean answers: the marketplace re-dispatches their assignments to
// someone else, like an MTurk qualification requirement.
func (m *Manager) EnableBlocklist(minVotes int64, minAgreement float64) {
	m.market.SetWorkerFilter(func(workerID string) bool {
		m.repMu.Lock()
		defer m.repMu.Unlock()
		rec, ok := m.workers[workerID]
		if !ok || rec.votes < minVotes {
			return true // not enough evidence yet
		}
		return float64(rec.agreed)/float64(rec.votes) >= minAgreement
	})
}

// BlockedWorkers lists workers the current blocklist parameters would
// reject, for the dashboard.
func (m *Manager) BlockedWorkers(minVotes int64, minAgreement float64) []string {
	var out []string
	for _, wq := range m.WorkerQualities() {
		if wq.Votes >= minVotes && wq.Agreement < minAgreement {
			out = append(out, wq.ID)
		}
	}
	return out
}
