package taskmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/qerr"
	"repro/internal/relation"
)

func TestScopeCancelResolvesPendingWithCause(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{}, 0)
	s := m.NewScope()
	def := filterDef()
	var got atomic.Pointer[Outcome]
	// BatchSize default 1 posts immediately; use a partial batch via a
	// bigger batch policy so the item stays pending.
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 10, PriceCents: 1, Linger: time.Hour, UseCache: true})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-1")}, Scope: s,
		Done: func(o Outcome) { got.Store(&o) }})
	if m.Pending() != 1 {
		t.Fatalf("want 1 pending, got %d", m.Pending())
	}
	s.Cancel(nil)
	out := got.Load()
	if out == nil {
		t.Fatal("pending item not resolved by Cancel")
	}
	if !errors.Is(out.Err, qerr.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", out.Err)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending not swept: %d", m.Pending())
	}
	// Submissions after cancel fail fast without queueing or posting.
	var late atomic.Pointer[Outcome]
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-2")}, Scope: s,
		Done: func(o Outcome) { late.Store(&o) }})
	if out := late.Load(); out == nil || !errors.Is(out.Err, qerr.ErrCanceled) {
		t.Fatalf("late submit: want immediate ErrCanceled, got %+v", out)
	}
}

func TestScopeCancelExpiresInflightAndRefunds(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 1}, 0)
	s := m.NewScope()
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 3, BatchSize: 1, PriceCents: 2, Linger: time.Minute, UseCache: true})
	var done atomic.Pointer[Outcome]
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-1")}, Scope: s,
		Done: func(o Outcome) { done.Store(&o) }})
	// Posted: 3 assignments × 2¢ charged up front.
	if got := m.Account().Spent(); got != 6 {
		t.Fatalf("want 6¢ charged at post, got %v", got)
	}
	if s.Spent() != 6 {
		t.Fatalf("scope sunk cost at post = %v", s.Spent())
	}
	s.Cancel(qerr.ErrDeadline)
	out := done.Load()
	if out == nil || !errors.Is(out.Err, qerr.ErrDeadline) {
		t.Fatalf("want ErrDeadline resolution, got %+v", out)
	}
	// No assignment had completed, so the whole charge is refunded.
	if got := m.Account().Spent(); got != 0 {
		t.Fatalf("want full refund, account still shows %v", got)
	}
	if s.Spent() != 0 {
		t.Fatalf("scope sunk cost after refund = %v", s.Spent())
	}
	if m.Inflight() != 0 {
		t.Fatalf("inflight not cleared: %d", m.Inflight())
	}
	// The marketplace no longer knows the HIT; late worker submissions
	// are discarded unpaid.
	runUntil(t, clock, func() bool { return clock.Pending() == 0 })
	if got := m.Account().Spent(); got != 0 {
		t.Fatalf("late submissions charged money: %v", got)
	}
}

func TestScopeBudgetCapsSpend(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	s := m.NewScope()
	s.SetBudget(2)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 1, Linger: time.Minute, UseCache: true})
	var mu sync.Mutex
	var errs, oks int
	for i := 0; i < 5; i++ {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString(relationKey(i))}, Scope: s,
			Done: func(o Outcome) {
				mu.Lock()
				defer mu.Unlock()
				if o.Err != nil {
					if !errors.Is(o.Err, budget.ErrExhausted) {
						t.Errorf("want budget error, got %v", o.Err)
					}
					errs++
				} else {
					oks++
				}
			}})
	}
	runUntil(t, clock, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errs+oks == 5
	})
	mu.Lock()
	defer mu.Unlock()
	if oks != 2 || errs != 3 {
		t.Fatalf("2¢ cap over 1¢ HITs: want 2 ok / 3 exhausted, got %d / %d", oks, errs)
	}
	if s.Spent() != 2 {
		t.Fatalf("scope spent %v of its 2¢ cap", s.Spent())
	}
}

func relationKey(i int) string { return "cat-" + string(rune('a'+i)) }

func TestScopePolicyOverride(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	// Engine-level policy: 3 assignments. Scope override: 1.
	m.SetPolicy(def.Name, Policy{Assignments: 3, BatchSize: 1, PriceCents: 1, Linger: time.Minute, UseCache: true})
	s := m.NewScope()
	s.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 1, Linger: time.Minute, UseCache: true})
	var done atomic.Pointer[Outcome]
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-x")}, Scope: s,
		Done: func(o Outcome) { done.Store(&o) }})
	runUntil(t, clock, func() bool { return done.Load() != nil })
	if out := done.Load(); out.Err != nil || len(out.Answers) != 1 {
		t.Fatalf("want a single-assignment outcome under the scope policy, got %+v", out)
	}
	// Unscoped submissions still use the engine policy.
	out := submitAndWait(t, m, clock, def, relation.NewString("cat-y"))
	if len(out.Answers) != 3 {
		t.Fatalf("unscoped redundancy = %d answers, want 3", len(out.Answers))
	}
}

func TestScopesNeverShareAHIT(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 1, Linger: time.Millisecond, UseCache: true})
	a, b := m.NewScope(), m.NewScope()
	var outs atomic.Int64
	for i := 0; i < 4; i++ {
		scope := a
		if i%2 == 1 {
			scope = b
		}
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString(relationKey(i))}, Scope: scope,
			Done: func(Outcome) { outs.Add(1) }})
	}
	m.Flush(def.Name)
	runUntil(t, clock, func() bool { return outs.Load() == 4 })
	// Four items, batch size 4, but two scopes: at least two HITs.
	st := m.StatsFor(def.Name)
	if st.HITsPosted < 2 {
		t.Fatalf("scopes shared a HIT: %d posted for two scopes", st.HITsPosted)
	}
}

// TestMixedGroupsAtThresholdStillFlush is the regression test for
// partial-group starvation: when the batch threshold is reached but no
// single (assignments, scope) group fills a batch — and Linger is 0, so
// no timer will ever fire — the partials must still cut and post.
func TestMixedGroupsAtThresholdStillFlush(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 1, Linger: 0, UseCache: true})
	s := m.NewScope()
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	for i := 0; i < 3; i++ {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString(relationKey(i))}, Scope: s, Done: done})
	}
	// The 4th item reaches the threshold but carries an assignments
	// override (like exec's pre-filter stages), so it can never share a
	// batch with the first three.
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-z")}, Scope: s,
		Assignments: 1, Done: done})
	runUntil(t, clock, func() bool { return outs.Load() == 4 })
	if m.Pending() != 0 {
		t.Fatalf("items stranded in pending: %d", m.Pending())
	}
}
