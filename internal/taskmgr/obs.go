package taskmgr

// This file is the manager's entire tracing surface. Every hook in the
// batching/posting/finalization paths funnels through the helpers here,
// all of which collapse to a nil check when no tracer is installed:
// the manager holds the tracer in an atomic pointer (the journal
// pattern), spans ride on pendingItem/inflightHIT fields that stay nil
// when tracing is off, and every obs call is nil-receiver safe. The
// disabled path therefore costs one atomic load per event site and
// zero allocations — and because spans never schedule clock events or
// consume randomness, enabling tracing cannot perturb a simulation.

import (
	"fmt"
	"strconv"

	"repro/internal/budget"
	"repro/internal/infer"
	"repro/internal/mturk"
	"repro/internal/obs"
)

// SetObs installs (or, with nil, removes) the tracer every batching and
// posting path reports spans and metrics to.
func (m *Manager) SetObs(t *obs.Tracer) {
	m.tracer.Store(t)
}

func (m *Manager) getObs() *obs.Tracer { return m.tracer.Load() }

// obsRegistry returns the metrics registry behind the installed tracer,
// nil when tracing is off (every registry method no-ops on nil).
func (m *Manager) obsRegistry() *obs.Registry { return m.getObs().Registry() }

// SetSpan attaches the owning query's trace span to the scope: batch
// spans parent under it and Cancel closes the whole tree.
func (s *Scope) SetSpan(sp *obs.Span) {
	if s == nil || sp == nil {
		return
	}
	s.span.Store(sp)
}

// Span returns the scope's attached query span (nil when tracing is
// off or the scope is unscoped).
func (s *Scope) Span() *obs.Span {
	if s == nil {
		return nil
	}
	return s.span.Load()
}

// traceBatchSpans opens the batch → hit span pair for one compiled
// batch HIT and attributes it to each submitting operator's span. It
// runs before the in-flight entry becomes visible to completions, so
// onAssignment always observes fl.span fully built. The batch span is
// backdated to queuedAt — its duration is the admission wait — and
// closed at post time; the HIT span stays open until the HIT retires.
func (m *Manager) traceBatchSpans(fl *inflightHIT, live []pendingItem, pol Policy, queuedAt mturk.VirtualTime) {
	tr := m.getObs()
	if tr == nil {
		return
	}
	var bs *obs.Span
	if parent := fl.shares[0].scope.Span(); parent != nil {
		bs = parent.Child(obs.KindBatch, fl.hit.Task)
	} else {
		bs = tr.StartRoot(obs.KindBatch, fl.hit.Task)
	}
	if queuedAt > 0 && queuedAt < bs.Start {
		bs.Start = queuedAt
	}
	bs.Annotate("fill", fmt.Sprintf("%d/%d", len(live), pol.BatchSize))
	if len(fl.shares) > 1 {
		bs.Annotate("shared_scopes", strconv.Itoa(len(fl.shares)))
	}
	if fl.adaptive {
		bs.Annotate("adaptive", fmt.Sprintf("min=%d cap=%d", fl.assign, fl.capA))
	}
	hs := bs.Child(obs.KindHIT, fl.hit.ID)
	hs.Annotate("backend", fl.backend)
	hs.AddHITs(1)
	hs.AddCost(int64(fl.cost))
	bs.End()
	fl.span = hs
	attributeOps(fl, live, fl.cost)
}

// attributeOps fans one HIT's posting out to the distinct submitting
// operator spans: each gets the HIT counted once and its item-count
// share of the cost (largest-remainder split, so shares sum exactly to
// the charge).
func attributeOps(fl *inflightHIT, live []pendingItem, cost budget.Cents) {
	var ops []*obs.Span
	var counts []int
	idx := make(map[*obs.Span]int, 1)
	for _, it := range live {
		if it.span == nil {
			continue
		}
		i, ok := idx[it.span]
		if !ok {
			i = len(ops)
			idx[it.span] = i
			ops = append(ops, it.span)
			counts = append(counts, 0)
		}
		counts[i]++
	}
	if len(ops) == 0 {
		return
	}
	shares := splitCost(cost, counts)
	for i, op := range ops {
		op.AddHITs(1)
		op.AddCost(int64(shares[i]))
	}
	fl.opSpans = ops
}

// traceBatchMetrics records the posting-time metrics for a batch HIT
// that actually reached the marketplace.
func (m *Manager) traceBatchMetrics(fl *inflightHIT, live []pendingItem, pol Policy, queuedAt mturk.VirtualTime) {
	if fl.span == nil {
		return
	}
	reg := m.obsRegistry()
	if reg == nil {
		return
	}
	task := fl.hit.Task
	reg.Counter(obs.MetricBatchesPosted, obs.L("task", task)).Add(1)
	reg.Counter(obs.MetricHITsPosted, obs.L("task", task), obs.L("backend", fl.backend)).Add(1)
	reg.Counter(obs.MetricCostCents, obs.L("task", task)).Add(int64(fl.cost))
	for i := range fl.shares {
		if label := fl.shares[i].scope.labelNow(); label != "" {
			reg.Counter(obs.MetricCostCents, obs.L("task", task), obs.L("scope", label)).Add(int64(fl.shares[i].cost))
		}
	}
	reg.Gauge(obs.MetricInflightHITs).Add(1)
	if queuedAt > 0 {
		reg.Histogram(obs.MetricAdmissionWait, obs.MinuteBuckets, obs.L("task", task)).
			Observe((fl.postedAt - queuedAt).Minutes())
	}
	reg.Histogram(obs.MetricBatchFillRatio, obs.RatioBuckets, obs.L("task", task)).
		Observe(float64(len(live)) / float64(pol.BatchSize))
}

// traceHITPostFailed closes the spans of a batch HIT the marketplace
// refused (everything was refunded; no gauge was ever incremented).
func (m *Manager) traceHITPostFailed(fl *inflightHIT, err error) {
	if fl.span == nil {
		return
	}
	fl.span.Annotate("error", err.Error())
	fl.span.End()
}

// traceAssignment records one received assignment as an instantaneous
// child span. Called with the HIT's stripe lock held; span mutexes
// nest under stripe locks everywhere.
func (m *Manager) traceAssignment(fl *inflightHIT, workerID string) {
	if fl.span == nil {
		return
	}
	fl.span.Child(obs.KindAssignment, workerID).End()
	fl.span.AddAssignments(1)
	if reg := m.obsRegistry(); reg != nil {
		reg.Counter(obs.MetricAssignments, obs.L("task", fl.hit.Task)).Add(1)
	}
}

// traceExtension records one purchased adaptive extension: an
// instantaneous child span carrying the price, remembered (under the
// stripe lock) so a later cancellation can annotate the refunded
// remainder onto the very spans that bought the slots.
func (m *Manager) traceExtension(s *flightStripe, hitID string, fl *inflightHIT, price budget.Cents) {
	if fl.span == nil {
		return
	}
	ext := fl.span.Child(obs.KindHIT, "extend")
	ext.AddCost(int64(price))
	ext.End()
	fl.span.AddExtensions(1)
	fl.span.AddCost(int64(price))
	s.mu.Lock()
	fl.extSpans = append(fl.extSpans, ext)
	s.mu.Unlock()
	if len(fl.opSpans) > 0 {
		fl.opSpans[0].AddExtensions(1)
		fl.opSpans[0].AddCost(int64(price))
	}
	if reg := m.obsRegistry(); reg != nil {
		reg.Counter(obs.MetricExtensions, obs.L("task", fl.hit.Task)).Add(1)
		reg.Counter(obs.MetricCostCents, obs.L("task", fl.hit.Task)).Add(int64(price))
	}
}

// traceHITDone closes out a finalized HIT: assignments are attributed
// to the submitting operators, inference posteriors (when an EM fit
// resolved the answers) are annotated in HIT item order, and the
// round-trip and extension-depth distributions observe the completion.
func (m *Manager) traceHITDone(fl *inflightHIT, latencyMin float64, posts map[string]infer.Posterior) {
	sp := fl.span
	if sp == nil {
		return
	}
	for _, op := range fl.opSpans {
		op.AddAssignments(int64(fl.assign))
	}
	if len(posts) > 0 {
		for _, hi := range fl.hit.Items {
			if p, ok := posts[hi.Key]; ok {
				sp.Annotate("posterior."+hi.Key, fmt.Sprintf("%v p=%.3f", p.Value, p.Confidence))
			}
		}
	}
	sp.End()
	if reg := m.obsRegistry(); reg != nil {
		reg.Histogram(obs.MetricHITRoundTrip, obs.MinuteBuckets,
			obs.L("task", fl.hit.Task), obs.L("backend", fl.backend)).Observe(latencyMin)
		if fl.adaptive {
			reg.Histogram(obs.MetricExtensionDepth, obs.DepthBuckets,
				obs.L("task", fl.hit.Task)).Observe(float64(len(fl.extSpans)))
		}
		reg.Gauge(obs.MetricInflightHITs).Add(-1)
	}
}

// traceHITAbandoned closes the span of a HIT that retired with zero
// assignments (terminal assignment failure).
func (m *Manager) traceHITAbandoned(fl *inflightHIT, err error) {
	if fl.span == nil {
		return
	}
	fl.span.Annotate("error", err.Error())
	fl.span.End()
	if reg := m.obsRegistry(); reg != nil {
		reg.Gauge(obs.MetricInflightHITs).Add(-1)
	}
}

// traceHITCanceled records a cancellation's refund on the HIT span and
// annotates the unconsumed extension spans with the remainder each gave
// back — the pro-rata refund walks the last-purchased slots first, the
// ones that cannot have completed yet. expired marks full expiry (the
// span ends and the in-flight gauge drops); a shared-HIT detach leaves
// the span open for the surviving participants.
func (m *Manager) traceHITCanceled(fl *inflightHIT, refund budget.Cents, expired bool) {
	sp := fl.span
	if sp == nil {
		return
	}
	if refund > 0 {
		sp.AddRefund(int64(refund))
		slots := fl.assign - fl.received
		for i := len(fl.extSpans) - 1; i >= 0 && slots > 0; i-- {
			fl.extSpans[i].Annotate("refunded_remainder_cents",
				strconv.FormatInt(fl.hit.RewardCents, 10))
			slots--
		}
		if reg := m.obsRegistry(); reg != nil {
			reg.Counter(obs.MetricRefundCents, obs.L("task", fl.hit.Task)).Add(int64(refund))
		}
	}
	if expired {
		sp.Annotate("canceled", "true")
		sp.End()
		if reg := m.obsRegistry(); reg != nil {
			reg.Gauge(obs.MetricInflightHITs).Add(-1)
		}
	}
}

// traceDirectHIT opens a HIT span for the single-post paths — grouped,
// join-grid and comparison HITs — parented to the scope's query span
// (or a synthetic root when unscoped), and records the posting metrics.
func (m *Manager) traceDirectHIT(scope *Scope, hitID, task, backendName string, cost budget.Cents) *obs.Span {
	tr := m.getObs()
	if tr == nil {
		return nil
	}
	var sp *obs.Span
	if parent := scope.Span(); parent != nil {
		sp = parent.Child(obs.KindHIT, hitID)
	} else {
		sp = tr.StartRoot(obs.KindHIT, hitID)
	}
	sp.Annotate("task", task)
	sp.Annotate("backend", backendName)
	sp.AddHITs(1)
	sp.AddCost(int64(cost))
	if reg := tr.Registry(); reg != nil {
		reg.Counter(obs.MetricHITsPosted, obs.L("task", task), obs.L("backend", backendName)).Add(1)
		reg.Counter(obs.MetricCostCents, obs.L("task", task)).Add(int64(cost))
		reg.Gauge(obs.MetricInflightHITs).Add(1)
	}
	return sp
}

// traceDirectAssignment mirrors traceAssignment for the join/rank
// in-flight types. Called with the stripe lock held.
func (m *Manager) traceDirectAssignment(sp *obs.Span, task, workerID string) {
	if sp == nil {
		return
	}
	sp.Child(obs.KindAssignment, workerID).End()
	sp.AddAssignments(1)
	if reg := m.obsRegistry(); reg != nil {
		reg.Counter(obs.MetricAssignments, obs.L("task", task)).Add(1)
	}
}

// traceDirectDone closes a join/rank HIT span at finalization.
func (m *Manager) traceDirectDone(sp *obs.Span, task, backendName string, latencyMin float64) {
	if sp == nil {
		return
	}
	sp.End()
	if reg := m.obsRegistry(); reg != nil {
		reg.Histogram(obs.MetricHITRoundTrip, obs.MinuteBuckets,
			obs.L("task", task), obs.L("backend", backendName)).Observe(latencyMin)
		reg.Gauge(obs.MetricInflightHITs).Add(-1)
	}
}

// traceDirectGone closes a join/rank HIT span that is retiring without
// finalizing — canceled by its scope or starved of assignments.
func (m *Manager) traceDirectGone(sp *obs.Span, reason string) {
	if sp == nil {
		return
	}
	sp.Annotate("error", reason)
	sp.End()
	if reg := m.obsRegistry(); reg != nil {
		reg.Gauge(obs.MetricInflightHITs).Add(-1)
	}
}
