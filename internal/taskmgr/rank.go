package taskmgr

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/store"
)

// RankItem is one row shown in an S-way comparison (Order) HIT. Key is
// the sort operator's routing key; Args the rendered values.
type RankItem struct {
	Key  string
	Args []relation.Value
}

// Ranking is one assignment's complete ordering of a comparison HIT:
// Rank maps item key → position (0 = first).
type Ranking struct {
	WorkerID string
	Rank     map[string]int
}

// RankBlockIn posts one S-way comparison HIT over exactly these items
// through the Order response and calls done exactly once with every
// assignment's full ranking (fewer than the policy's redundancy when
// assignments failed terminally; none plus an error when the HIT could
// not complete at all).
//
// Unlike Submit, comparison items are never answered from the Task
// Cache or a Task Model: an Order answer is a position *within this
// group* and is meaningless outside it, so caching per-item ranks would
// poison later groups. The group composition is the caller's sorting
// strategy — the manager posts exactly what it is given.
func (m *Manager) RankBlockIn(scope *Scope, def *qlang.TaskDef, items []RankItem, done func(rankings []Ranking, err error)) {
	if len(items) == 0 {
		done(nil, fmt.Errorf("taskmgr: %s: empty comparison group", def.Name))
		return
	}
	if cause := scope.Err(); cause != nil {
		done(nil, fmt.Errorf("taskmgr: %s: %w", def.Name, cause))
		return
	}
	st := m.state(def.Name, def)
	base := m.basePolicy()
	st.mu.Lock()
	pol := st.scopedPolicyLocked(base, scope)
	st.submitted += int64(len(items))
	st.mu.Unlock()

	price := m.priceFor(def, pol)
	h := &hit.HIT{
		ID:          m.market.NewHITID(),
		Task:        def.Name,
		Type:        def.Type,
		Title:       def.Name,
		Question:    hit.RenderText(def.Text, def.TextArgs, def.Params, nil),
		Response:    rankResponse(def),
		RewardCents: price,
		Assignments: pol.Assignments,
	}
	if h.Question == "" {
		h.Question = "Order the shown items."
	}
	for _, it := range items {
		h.Items = append(h.Items, hit.Item{Key: it.Key, Args: it.Args})
	}

	cost := budget.Cents(price * int64(pol.Assignments))
	if err := scope.spend(cost); err != nil {
		done(nil, fmt.Errorf("taskmgr: %s: %w", def.Name, err))
		return
	}
	if err := m.account.Spend(cost); err != nil {
		scope.refund(cost)
		done(nil, fmt.Errorf("taskmgr: %s: %w", def.Name, err))
		return
	}
	st.mu.Lock()
	st.spent += cost
	st.hitsPosted++
	st.questionsAsked += int64(len(items))
	st.mu.Unlock()

	fl := &rankInflight{
		state:    st,
		def:      def,
		scope:    scope,
		cost:     cost,
		keys:     keysOf(items),
		needed:   pol.Assignments,
		postedAt: m.market.Clock().Now(),
		backend:  m.servingBackend(def),
		reward:   price,
		done:     done,
	}
	fl.span = m.traceDirectHIT(scope, h.ID, def.Name, fl.backend, cost)
	fl.span.Annotate("group_size", fmt.Sprintf("%d", len(items)))
	s := m.flights.stripeFor(h.ID)
	s.mu.Lock()
	if s.ranks == nil {
		s.ranks = make(map[string]*rankInflight)
	}
	s.ranks[h.ID] = fl
	s.mu.Unlock()
	if err := m.market.Post(h, m.onRankAssignment); err != nil {
		s.mu.Lock()
		delete(s.ranks, h.ID)
		s.mu.Unlock()
		m.traceDirectGone(fl.span, err.Error())
		m.account.Refund(cost)
		scope.refund(cost)
		done(nil, fmt.Errorf("taskmgr: post %s: %v", def.Name, err))
		return
	}
	if cause := scope.registerHIT(h.ID); cause != nil {
		m.cancelScopeHIT(h.ID, scope, cause)
	}
}

func keysOf(items []RankItem) []string {
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	return keys
}

// rankInflight collects the assignments of one comparison HIT.
type rankInflight struct {
	state    *taskState
	def      *qlang.TaskDef
	scope    *Scope
	cost     budget.Cents
	keys     []string // item keys in HIT order
	byWorker []hit.Answers
	received int
	needed   int
	postedAt mturk.VirtualTime
	backend  string // serving backend name, recorded at post time
	reward   int64  // per-assignment price actually charged
	done     func([]Ranking, error)
	span     *obs.Span // HIT trace span (nil = tracing off)
}

func (m *Manager) onRankAssignment(res mturk.AssignmentResult) {
	s := m.flights.stripeFor(res.HITID)
	s.mu.Lock()
	fl, ok := s.ranks[res.HITID]
	if !ok {
		s.mu.Unlock()
		return
	}
	fl.byWorker = append(fl.byWorker, res.Answers)
	fl.received++
	m.traceDirectAssignment(fl.span, fl.def.Name, res.Answers.WorkerID)
	if fl.received < fl.needed {
		s.mu.Unlock()
		return
	}
	delete(s.ranks, res.HITID)
	s.mu.Unlock()
	fl.scope.unregisterHIT(res.HITID)
	m.finalizeRank(fl)
}

// finalizeRank turns the collected assignments into per-assignment
// rankings, feeds the comparison agreement estimator (and the journal,
// so warm-started engines seed ChooseRankStrategy with real evidence),
// and resolves the caller. No manager lock is held while it runs.
func (m *Manager) finalizeRank(fl *rankInflight) {
	st := fl.state
	latencyMin := (m.market.Clock().Now() - fl.postedAt).Minutes()
	st.latency.Observe(latencyMin)
	m.traceDirectDone(fl.span, fl.def.Name, fl.backend, latencyMin)
	j := m.getJournal()
	if j != nil {
		j.Append(store.Record{Kind: store.KindLatency, Task: fl.def.Name, X: latencyMin})
	}

	rankings := make([]Ranking, 0, len(fl.byWorker))
	for _, ans := range fl.byWorker {
		r := Ranking{WorkerID: ans.WorkerID, Rank: make(map[string]int, len(fl.keys))}
		complete := true
		for _, key := range fl.keys {
			v, ok := ans.Values[key]
			if !ok {
				complete = false
				break
			}
			r.Rank[key] = int(v.Int())
		}
		if complete {
			rankings = append(rankings, r)
		}
	}

	// Pairwise agreement across assignments: for every item pair, the
	// majority share of assignments placing them in the same relative
	// order. 1.0 = unanimous orderings; 0.5 = coin-flip (heavy
	// inversions). The complement is the inversion rate the optimizer's
	// hybrid window model uses.
	m.noteWorkerRankings(fl.keys, rankings)
	if share, pairs := pairAgreement(fl.keys, rankings); pairs > 0 {
		st.rankAgreementEstimator().Observe(share)
		st.agreement.Observe(share)
		if j != nil {
			j.Append(store.Record{Kind: store.KindRankPair, Task: fl.def.Name, X: share, N: int64(pairs)})
		}
		m.observeBackend(fl.backend, fl.def.Type, fl.reward, latencyMin, share)
	}
	fl.done(rankings, nil)
}

// pairAgreement computes the mean majority share over all item pairs of
// a comparison HIT, given the complete rankings that arrived.
func pairAgreement(keys []string, rankings []Ranking) (share float64, pairs int) {
	if len(rankings) == 0 || len(keys) < 2 {
		return 0, 0
	}
	total := 0.0
	for i := 0; i < len(keys); i++ {
		for k := i + 1; k < len(keys); k++ {
			before := 0
			for _, r := range rankings {
				if r.Rank[keys[i]] < r.Rank[keys[k]] {
					before++
				}
			}
			maj := before
			if other := len(rankings) - before; other > maj {
				maj = other
			}
			total += float64(maj) / float64(len(rankings))
			pairs++
		}
	}
	return total / float64(pairs), pairs
}

// RankAgreement reports the task's comparison-agreement estimate (mean
// pairwise majority share across finalized comparison HITs, live or
// replayed from the knowledge store) and how many HITs contributed.
func (m *Manager) RankAgreement(task string) (estimate float64, n int) {
	st := m.state(task, nil)
	st.mu.Lock()
	est := st.rankAgr
	st.mu.Unlock()
	if est == nil {
		return 0, 0
	}
	return est.Value(), est.Count()
}

// rankResponse derives the Order response for a comparison task,
// defaulting when the definition carries something else.
func rankResponse(def *qlang.TaskDef) qlang.Response {
	if def.Response.Kind == qlang.ResponseOrder {
		return def.Response
	}
	return qlang.Response{Kind: qlang.ResponseOrder}
}
