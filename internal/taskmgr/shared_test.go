package taskmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/hit"
	"repro/internal/qerr"
	"repro/internal/relation"
)

func TestSplitCostLargestRemainder(t *testing.T) {
	cases := []struct {
		total  budget.Cents
		counts []int
		want   []budget.Cents
	}{
		{4, []int{2, 2}, []budget.Cents{2, 2}},
		{3, []int{2, 1, 1}, []budget.Cents{1, 1, 1}},
		{5, []int{2, 1, 1}, []budget.Cents{3, 1, 1}},
		{1, []int{1, 1, 1}, []budget.Cents{1, 0, 0}},
		{10, []int{3, 3, 3}, []budget.Cents{4, 3, 3}},
		{7, []int{5}, []budget.Cents{7}},
		{0, []int{1, 2}, []budget.Cents{0, 0}},
	}
	for _, c := range cases {
		got := splitCost(c.total, c.counts)
		sum := budget.Cents(0)
		for i, g := range got {
			sum += g
			if g != c.want[i] {
				t.Errorf("splitCost(%d, %v) = %v, want %v", c.total, c.counts, got, c.want)
				break
			}
		}
		if sum != c.total {
			t.Errorf("splitCost(%d, %v) sums to %d", c.total, c.counts, sum)
		}
	}
}

// Two sharing scopes with matching policies fill one HIT together, and
// the cost splits across their budgets by item count.
func TestSharedScopesCoBatchOneHIT(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 2, Linger: time.Hour, UseCache: true})
	a, b := m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	var outs atomic.Int64
	for i := 0; i < 4; i++ {
		scope := a
		if i%2 == 1 {
			scope = b
		}
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString(relationKey(i))}, Scope: scope,
			Done: func(Outcome) { outs.Add(1) }})
	}
	runUntil(t, clock, func() bool { return outs.Load() == 4 })
	if st := m.StatsFor(def.Name); st.HITsPosted != 1 {
		t.Fatalf("sharing scopes posted %d HITs, want 1", st.HITsPosted)
	}
	// 1 assignment × 2¢, two items each: 1¢ per scope.
	if a.Spent() != 1 || b.Spent() != 1 {
		t.Fatalf("cost split = %v/%v, want 1/1", a.Spent(), b.Spent())
	}
	if got := m.Account().Spent(); got != 2 {
		t.Fatalf("account spent %v, want 2", got)
	}
	if sh := m.Sharing(); sh.SharedHITs != 1 || sh.CoBatchedItems != 4 || sh.HITsSaved != 1 {
		t.Fatalf("sharing counters = %+v", sh)
	}
}

// A non-sharing scope must never be merged into a shared HIT, even when
// sharing neighbors are pooled on the same task.
func TestUnsharedScopeStaysIsolatedFromPool(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 2, PriceCents: 1, Linger: time.Hour, UseCache: true})
	a, b, c := m.NewScope(), m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: a, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-c")}, Scope: c, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: b, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-d")}, Scope: c, Done: done})
	runUntil(t, clock, func() bool { return outs.Load() == 4 })
	// Shared pool (a+b) fills one HIT; c fills its own.
	if st := m.StatsFor(def.Name); st.HITsPosted != 2 {
		t.Fatalf("posted %d HITs, want 2 (one shared, one isolated)", st.HITsPosted)
	}
	if sh := m.Sharing(); sh.SharedHITs != 1 {
		t.Fatalf("sharing counters = %+v", sh)
	}
}

// Scopes whose effective posting policies differ are incompatible and
// never co-batch, sharing opt-in or not.
func TestSharedScopesWithDifferentPoliciesDontMerge(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 2, PriceCents: 1, Linger: time.Millisecond, UseCache: true})
	a, b := m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	b.SetPolicy(def.Name, Policy{Assignments: 2, BatchSize: 2, PriceCents: 1, Linger: time.Millisecond, UseCache: true})
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: a, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: b, Done: done})
	m.Flush(def.Name)
	runUntil(t, clock, func() bool { return outs.Load() == 2 })
	if st := m.StatsFor(def.Name); st.HITsPosted != 2 {
		t.Fatalf("incompatible policies co-batched: %d HITs", st.HITsPosted)
	}
	if sh := m.Sharing(); sh.SharedHITs != 0 {
		t.Fatalf("sharing counters = %+v", sh)
	}
}

// Canceling one participant of a shared HIT detaches its items and
// refunds its share; the HIT keeps running for the other scope and the
// ledgers reconcile.
func TestSharedHITSurvivesOneScopeCancel(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 1}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 2, BatchSize: 2, PriceCents: 2, Linger: time.Hour, UseCache: true})
	a, b := m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	var aOut, bOut atomic.Pointer[Outcome]
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: a,
		Done: func(o Outcome) { aOut.Store(&o) }})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: b,
		Done: func(o Outcome) { bOut.Store(&o) }})
	// 2 assignments × 2¢ = 4¢, split 2/2.
	if a.Spent() != 2 || b.Spent() != 2 || m.Account().Spent() != 4 {
		t.Fatalf("at post: a=%v b=%v account=%v", a.Spent(), b.Spent(), m.Account().Spent())
	}
	a.Cancel(nil)
	if out := aOut.Load(); out == nil || !errors.Is(out.Err, qerr.ErrCanceled) {
		t.Fatalf("canceled scope's item: %+v", out)
	}
	// No assignment done yet: a's whole share refunds; b's stays.
	if a.Spent() != 0 {
		t.Fatalf("a refunded %v short", a.Spent())
	}
	if got := m.Account().Spent(); got != 2 {
		t.Fatalf("account after detach = %v, want b's 2", got)
	}
	if m.Inflight() != 1 {
		t.Fatalf("shared HIT expired by one participant's cancel (inflight=%d)", m.Inflight())
	}
	runUntil(t, clock, func() bool { return bOut.Load() != nil })
	if out := bOut.Load(); out.Err != nil || len(out.Answers) != 2 {
		t.Fatalf("survivor outcome: %+v", out)
	}
	if a.Spent()+b.Spent() != m.Account().Spent() {
		t.Fatalf("ledger drift: scopes %v+%v, account %v", a.Spent(), b.Spent(), m.Account().Spent())
	}
}

// When the last live participant cancels too, the shared HIT fully
// expires and every cent returns.
func TestSharedHITLastScopeCancelExpires(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{Workers: 1}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 2, BatchSize: 2, PriceCents: 2, Linger: time.Hour, UseCache: true})
	a, b := m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: a, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: b, Done: done})
	a.Cancel(nil)
	b.Cancel(nil)
	if outs.Load() != 2 {
		t.Fatalf("resolved %d of 2 items", outs.Load())
	}
	if m.Inflight() != 0 {
		t.Fatalf("HIT not expired: inflight=%d", m.Inflight())
	}
	if a.Spent() != 0 || b.Spent() != 0 || m.Account().Spent() != 0 {
		t.Fatalf("money stuck: a=%v b=%v account=%v", a.Spent(), b.Spent(), m.Account().Spent())
	}
}

// Post failure on a batch spanning scopes refunds each scope exactly
// its share — no double refund, account exactly zero.
func TestPostFailureRefundsPerScope(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 3, PriceCents: 5, Linger: time.Hour, UseCache: true})
	hook := func(h *hit.HIT) error { return fmt.Errorf("injected outage") }
	m.postHook.Store(&hook)
	a, b := m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	var failed atomic.Int64
	done := func(o Outcome) {
		if o.Err != nil {
			failed.Add(1)
		}
	}
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: a, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: a, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-c")}, Scope: b, Done: done})
	if failed.Load() != 3 {
		t.Fatalf("want 3 post-failure outcomes, got %d", failed.Load())
	}
	if a.Spent() != 0 || b.Spent() != 0 {
		t.Fatalf("scope refunds off: a=%v b=%v", a.Spent(), b.Spent())
	}
	if got := m.Account().Spent(); got != 0 {
		t.Fatalf("account after refund = %v (double-refund would go negative, loss positive)", got)
	}
	if m.Inflight() != 0 {
		t.Fatalf("failed post left inflight state: %d", m.Inflight())
	}
}

// One scope's budget failing mid-charge drops only that scope's items;
// the others re-split and still post.
func TestSharedChargeRetriesWithoutBrokeScope(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 2, PriceCents: 4, Linger: time.Hour, UseCache: true})
	rich, broke := m.NewScope(), m.NewScope()
	rich.SetShared(true)
	broke.SetShared(true)
	broke.SetBudget(1) // cannot cover a 2¢ share
	var richOut, brokeOut atomic.Pointer[Outcome]
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: rich,
		Done: func(o Outcome) { richOut.Store(&o) }})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: broke,
		Done: func(o Outcome) { brokeOut.Store(&o) }})
	if out := brokeOut.Load(); out == nil || !errors.Is(out.Err, budget.ErrExhausted) {
		t.Fatalf("broke scope: want ErrExhausted, got %+v", out)
	}
	runUntil(t, clock, func() bool { return richOut.Load() != nil })
	if out := richOut.Load(); out.Err != nil {
		t.Fatalf("rich scope should still be served: %v", out.Err)
	}
	// The HIT price does not shrink: rich pays all 4¢.
	if rich.Spent() != 4 || broke.Spent() != 0 || m.Account().Spent() != 4 {
		t.Fatalf("ledger: rich=%v broke=%v account=%v", rich.Spent(), broke.Spent(), m.Account().Spent())
	}
}

// Items whose scope canceled between cut and post are dropped (resolved
// with the cause) instead of being posted as sunk-cost questions; the
// live scope's items still run.
func TestPostBatchDropsCanceledScopeItems(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 10, PriceCents: 1, Linger: time.Hour, UseCache: true})
	a, b := m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	st := m.state(def.Name, def)
	var aOut, bOut atomic.Pointer[Outcome]
	mk := func(sc *Scope, key string, out *atomic.Pointer[Outcome]) pendingItem {
		return pendingItem{key: m.newKey(), args: []relation.Value{relation.NewString(key)},
			def: def, scope: sc, shared: true, done: func(o Outcome) { out.Store(&o) }}
	}
	batch := []pendingItem{mk(a, "cat-a", &aOut), mk(b, "cat-b", &bOut)}
	// Cancel a after the batch was cut but before it posts (a linger
	// flush or admission queue can hold it across that window).
	a.Cancel(nil)
	m.postBatches(st, [][]pendingItem{batch})
	if out := aOut.Load(); out == nil || !errors.Is(out.Err, qerr.ErrCanceled) {
		t.Fatalf("canceled scope's item posted anyway: %+v", out)
	}
	runUntil(t, clock, func() bool { return bOut.Load() != nil })
	if out := bOut.Load(); out.Err != nil {
		t.Fatalf("live scope's item failed: %v", out.Err)
	}
	if stats := m.StatsFor(def.Name); stats.QuestionsAsked != 1 {
		t.Fatalf("asked %d questions, want 1 (canceled item dropped)", stats.QuestionsAsked)
	}
	if a.Spent() != 0 {
		t.Fatalf("canceled scope charged %v", a.Spent())
	}
}

// Regression for linger starvation: a threshold cut that produces a
// full batch for one group used to strand another group's leftover
// forever when no linger timer was armed (Linger 0 policies). The
// leftovers must post too.
func TestCutLeftoverWithoutLingerStillPosts(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 1, Linger: 0, UseCache: true})
	x, y := m.NewScope(), m.NewScope()
	x.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 2, PriceCents: 1, Linger: 0, UseCache: true})
	y.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 1, Linger: 0, UseCache: true})
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-x1")}, Scope: x, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-y1")}, Scope: y, Done: done})
	// x's second item fills x's batch of 2; y1 is the leftover that
	// used to starve (no timer, threshold branch satisfied by the cut).
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-x2")}, Scope: x, Done: done})
	runUntil(t, clock, func() bool { return outs.Load() == 3 })
	if m.Pending() != 0 {
		t.Fatalf("leftover stranded in pending: %d", m.Pending())
	}
}

// The same scenario with a positive Linger on the leftover's policy
// must arm a timer instead of force-posting a 1-item HIT.
func TestCutLeftoverRearmsLinger(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 1, Linger: time.Minute, UseCache: true})
	x, y := m.NewScope(), m.NewScope()
	x.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 2, PriceCents: 1, Linger: 0, UseCache: true})
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-x1")}, Scope: x, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-y1")}, Scope: y, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-x2")}, Scope: x, Done: done})
	// x's pair posts; y1 waits for its linger, then posts via the timer.
	runUntil(t, clock, func() bool { return outs.Load() == 3 })
	if got := m.StatsFor(def.Name).HITsPosted; got != 2 {
		t.Fatalf("posted %d HITs, want 2 (pair + lingered leftover)", got)
	}
	_ = clock
}

// FlushScope posts the calling scope's own partials but leaves shared
// partials pooled (with a linger armed) so other queries can fill them.
func TestFlushScopeKeepsSharedPartialsPooled(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 4, PriceCents: 1, Linger: time.Minute, UseCache: true})
	a, b, c := m.NewScope(), m.NewScope(), m.NewScope()
	a.SetShared(true)
	b.SetShared(true)
	var outs atomic.Int64
	done := func(Outcome) { outs.Add(1) }
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a1")}, Scope: a, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a2")}, Scope: a, Done: done})
	m.FlushScope(def.Name, a)
	if m.Pending() != 2 {
		t.Fatalf("shared partials posted by FlushScope: pending=%d", m.Pending())
	}
	// Another sharing query's items complete the batch.
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b1")}, Scope: b, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b2")}, Scope: b, Done: done})
	runUntil(t, clock, func() bool { return outs.Load() == 4 })
	if st := m.StatsFor(def.Name); st.HITsPosted != 1 {
		t.Fatalf("posted %d HITs, want 1 co-batched", st.HITsPosted)
	}
	// A non-shared scope's partial force-cuts like Flush always did.
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-c1")}, Scope: c, Done: done})
	m.FlushScope(def.Name, c)
	runUntil(t, clock, func() bool { return outs.Load() == 5 })
	if m.Pending() != 0 {
		t.Fatalf("own partial not flushed: pending=%d", m.Pending())
	}
}

// With an admission gate of 1 and a single worker, queued batches post
// in priority order first, then weighted fair share, then FIFO.
func TestAdmissionGateOrdersByPriorityThenFairShare(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 1}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 1, Linger: time.Hour, UseCache: false})
	m.SetAdmission(1)
	warm, hi, loA, loB := m.NewScope(), m.NewScope(), m.NewScope(), m.NewScope()
	hi.SetPriority(1)
	loA.SetWeight(2)
	var mu sync.Mutex
	var order []string
	submit := func(sc *Scope, tag string) {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-" + tag)}, Scope: sc,
			Done: func(Outcome) {
				mu.Lock()
				order = append(order, tag)
				mu.Unlock()
			}})
	}
	// First submission takes the only slot immediately; the rest queue.
	submit(warm, "first")
	submit(loA, "a1")
	submit(loA, "a2")
	submit(loA, "a3")
	submit(loB, "b1")
	submit(loB, "b2")
	submit(hi, "hi")
	runUntil(t, clock, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 7
	})
	// hi (priority) admits as soon as the slot frees; then loA/loB
	// alternate 2:1 by weight: a1 (0*1 vs 1*2), b1 after loA's credit
	// passes loB's, etc. FIFO breaks exact ties.
	want := []string{"first", "hi", "a1", "b1", "a2", "a3", "b2"}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

// Queued-but-unposted batches are provisionally charged against
// RemainingBudget so concurrent planners cannot over-commit headroom.
func TestQueuedBatchVisibleToRemainingBudget(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{Workers: 1}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 3, Linger: time.Hour, UseCache: false})
	m.SetAdmission(1)
	s := m.NewScope()
	s.SetBudget(100)
	done := func(Outcome) {}
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: s, Done: done})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: s, Done: done})
	// First posted (charged 3), second queued (provisional 3).
	rem, ok := s.RemainingBudget()
	if !ok || rem != 94 {
		t.Fatalf("RemainingBudget = %v/%v, want 94 (100 − 3 charged − 3 queued)", rem, ok)
	}
	// Canceling releases the provisional charge and refunds the post.
	s.Cancel(nil)
	rem, _ = s.RemainingBudget()
	if rem != 100 {
		t.Fatalf("after cancel RemainingBudget = %v, want 100", rem)
	}
}

// Scope.Cancel removes the scope's items from the admission queue; a
// co-queued scope's items keep their place and still post.
func TestCancelSweepsAdmissionQueue(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 1}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 1, Linger: time.Hour, UseCache: false})
	m.SetAdmission(1)
	a, b := m.NewScope(), m.NewScope()
	var aOut, bOut atomic.Pointer[Outcome]
	var first atomic.Pointer[Outcome]
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-0")}, Scope: b,
		Done: func(o Outcome) { first.Store(&o) }})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-a")}, Scope: a,
		Done: func(o Outcome) { aOut.Store(&o) }})
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString("cat-b")}, Scope: b,
		Done: func(o Outcome) { bOut.Store(&o) }})
	a.Cancel(nil)
	if out := aOut.Load(); out == nil || !errors.Is(out.Err, qerr.ErrCanceled) {
		t.Fatalf("queued item of canceled scope: %+v", out)
	}
	runUntil(t, clock, func() bool { return bOut.Load() != nil })
	if out := bOut.Load(); out.Err != nil {
		t.Fatalf("surviving queued item failed: %v", out.Err)
	}
	if a.Spent() != 0 {
		t.Fatalf("canceled scope charged %v for a never-posted batch", a.Spent())
	}
}

// Ledger reconciliation under churn: injected post failures, budget
// caps, mid-flight cancellations and shared batches — per-scope spend
// must sum exactly to the account at quiesce. Run with -race in CI.
func TestScopeLedgersReconcileUnderChurn(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 4}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 2, BatchSize: 3, PriceCents: 3, Linger: time.Millisecond, UseCache: false})
	m.SetAdmission(2)
	var posts atomic.Int64
	hook := func(h *hit.HIT) error {
		if posts.Add(1)%3 == 0 {
			return fmt.Errorf("injected outage")
		}
		return nil
	}
	m.postHook.Store(&hook)
	const nScopes = 8
	scopes := make([]*Scope, nScopes)
	var outs atomic.Int64
	const perScope = 6
	for i := range scopes {
		scopes[i] = m.NewScope()
		scopes[i].SetShared(i%2 == 0) // half share, half isolated
		if i%3 == 0 {
			scopes[i].SetBudget(10)
		}
	}
	var wg sync.WaitGroup
	for i, sc := range scopes {
		i, sc := i, sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perScope; j++ {
				m.Submit(Request{Def: def,
					Args:  []relation.Value{relation.NewString(fmt.Sprintf("cat-%d-%d", i, j))},
					Scope: sc, Done: func(Outcome) { outs.Add(1) }})
			}
			if i%4 == 1 {
				sc.Cancel(nil) // mid-flight cancellation
			}
		}()
	}
	wg.Wait()
	runUntil(t, clock, func() bool { return outs.Load() == nScopes*perScope })
	runUntil(t, clock, func() bool { return m.Inflight() == 0 && clock.Pending() == 0 })
	var sum budget.Cents
	for _, sc := range scopes {
		sum += sc.Spent()
	}
	if got := m.Account().Spent(); sum != got {
		t.Fatalf("ledger drift: scopes sum %v, account %v", sum, got)
	}
}

// RemainingBudget is read by planners while completions charge the
// scope concurrently; this hammers both sides under -race.
func TestRemainingBudgetConcurrentWithCharges(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{Workers: 4}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 1, Linger: time.Millisecond, UseCache: false})
	s := m.NewScope()
	s.SetBudget(1000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rem, ok := s.RemainingBudget(); ok && rem > 1000 {
				t.Errorf("headroom above cap: %v", rem)
				return
			}
			_ = s.Spent()
		}
	}()
	var outs atomic.Int64
	const n = 40
	for i := 0; i < n; i++ {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewString(fmt.Sprintf("cat-%d", i))},
			Scope: s, Done: func(Outcome) { outs.Add(1) }})
	}
	runUntil(t, clock, func() bool { return outs.Load() == n })
	close(stop)
	wg.Wait()
	if s.Spent() != n {
		t.Fatalf("spent %v, want %d", s.Spent(), n)
	}
}
