package taskmgr

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/store"
)

// hitPair is one unresolved cell of a join grid.
type hitPair struct{ l, r JoinItem }

// JoinItem is one row shown in a column of the two-column join interface
// (Figure 3). Key is the operator's routing key; Args the rendered
// values (typically one image).
type JoinItem struct {
	Key  string
	Args []relation.Value
}

// JoinBlock evaluates the cross product of left×right through the
// two-column JoinColumns interface: one HIT answers |left|·|right| pair
// questions at once, the batching that makes human joins affordable.
// done fires exactly once per pair with PairKey(left.Key, right.Key).
//
// Cached pairs are answered for free; if every pair is cached no HIT is
// posted. Otherwise the grid shrinks to the rows/columns still needed
// (workers answer all shown pairs; fresh answers refresh the cache).
func (m *Manager) JoinBlock(def *qlang.TaskDef, left, right []JoinItem, done func(pairKey string, out Outcome)) {
	m.JoinBlockIn(nil, def, left, right, done)
}

// JoinBlockIn is JoinBlock bound to a query scope: a canceled scope
// resolves every pair immediately with the cause, and the posted grid
// HIT is registered for expiry/refund should the scope cancel mid-HIT.
func (m *Manager) JoinBlockIn(scope *Scope, def *qlang.TaskDef, left, right []JoinItem, done func(pairKey string, out Outcome)) {
	if len(left) == 0 || len(right) == 0 {
		return
	}
	if cause := scope.Err(); cause != nil {
		for _, l := range left {
			for _, r := range right {
				done(hit.PairKey(l.Key, r.Key), Outcome{Err: fmt.Errorf("taskmgr: %s: %w", def.Name, cause)})
			}
		}
		return
	}
	st := m.state(def.Name, def)
	base := m.basePolicy()
	st.mu.Lock()
	pol := st.scopedPolicyLocked(base, scope)
	st.submitted += int64(len(left) * len(right))
	st.mu.Unlock()

	pairArgs := func(l, r JoinItem) []relation.Value {
		return append(append([]relation.Value{}, l.Args...), r.Args...)
	}

	// Resolve what we can from cache and model.
	var unresolved []hitPair
	type resolution struct {
		key string
		out Outcome
	}
	var resolved []resolution
	for _, l := range left {
		for _, r := range right {
			key := hit.PairKey(l.Key, r.Key)
			args := pairArgs(l, r)
			if pol.UseCache {
				if entry, ok := m.cache.Get(cache.NewKey(def.Name, args)); ok && len(entry.Answers) > 0 {
					st.mu.Lock()
					st.cacheHits++
					st.mu.Unlock()
					out := reduce(def, entry.Answers)
					out.FromCache = true
					st.selectivity.Observe(out.Value.Truthy())
					resolved = append(resolved, resolution{key: key, out: out})
					continue
				}
			}
			if pol.UseModel {
				if tm, ok := m.models.For(def.Name); ok {
					if v, _, ok := tm.TryAnswer(args); ok {
						st.mu.Lock()
						st.modelAnswers++
						st.mu.Unlock()
						st.selectivity.Observe(v.Truthy())
						resolved = append(resolved, resolution{key: key,
							out: Outcome{Value: v, Answers: []relation.Value{v}, Agreement: 1, FromModel: true}})
						continue
					}
				}
			}
			unresolved = append(unresolved, hitPair{l, r})
		}
	}

	if len(unresolved) == 0 {
		for _, r := range resolved {
			done(r.key, r.out)
		}
		return
	}

	// Shrink the grid to only the rows/columns still needed.
	neededLeft := dedupeJoinItems(unresolved, true)
	neededRight := dedupeJoinItems(unresolved, false)
	needPair := make(map[string]bool, len(unresolved))
	for _, p := range unresolved {
		needPair[hit.PairKey(p.l.Key, p.r.Key)] = true
	}

	price := m.priceFor(def, pol)
	h := &hit.HIT{
		ID:          m.market.NewHITID(),
		Task:        def.Name,
		Type:        def.Type,
		Title:       def.Name,
		Question:    hit.RenderText(def.Text, def.TextArgs, def.Params, nil),
		Response:    joinResponse(def),
		RewardCents: price,
		Assignments: pol.Assignments,
	}
	if h.Question == "" {
		h.Question = "Match the items in the left column with the items in the right column."
	}
	for _, l := range neededLeft {
		h.Left = append(h.Left, hit.Item{Key: l.Key, Args: l.Args})
	}
	for _, r := range neededRight {
		h.Right = append(h.Right, hit.Item{Key: r.Key, Args: r.Args})
	}

	cost := budget.Cents(price * int64(pol.Assignments))
	if err := scope.spend(cost); err != nil {
		for _, r := range resolved {
			done(r.key, r.out)
		}
		for _, p := range unresolved {
			done(hit.PairKey(p.l.Key, p.r.Key), Outcome{Err: fmt.Errorf("taskmgr: %s: %w", def.Name, err)})
		}
		return
	}
	if err := m.account.Spend(cost); err != nil {
		scope.refund(cost)
		for _, r := range resolved {
			done(r.key, r.out)
		}
		for _, p := range unresolved {
			done(hit.PairKey(p.l.Key, p.r.Key), Outcome{Err: fmt.Errorf("taskmgr: %s: %w", def.Name, err)})
		}
		return
	}
	st.mu.Lock()
	st.spent += cost
	st.hitsPosted++
	st.questionsAsked += int64(len(neededLeft) * len(neededRight))
	st.mu.Unlock()

	// order records every grid pair in row-major order, so finalization
	// resolves pairs identically on every run (map iteration would not).
	pairItems := make(map[string]pendingItem)
	order := make([]string, 0, len(neededLeft)*len(neededRight))
	for _, l := range neededLeft {
		for _, r := range neededRight {
			key := hit.PairKey(l.Key, r.Key)
			pairItems[key] = pendingItem{key: key, args: pairArgs(l, r), def: def}
			order = append(order, key)
		}
	}
	fl := &joinInflight{
		state:    st,
		def:      def,
		scope:    scope,
		cost:     cost,
		items:    pairItems,
		order:    order,
		need:     needPair,
		answers:  make(map[string][]relation.Value),
		needed:   pol.Assignments,
		postedAt: m.market.Clock().Now(),
		backend:  m.servingBackend(def),
		reward:   price,
		done:     done,
	}
	fl.span = m.traceDirectHIT(scope, h.ID, def.Name, fl.backend, cost)
	fl.span.Annotate("grid", fmt.Sprintf("%dx%d", len(neededLeft), len(neededRight)))
	s := m.flights.stripeFor(h.ID)
	s.mu.Lock()
	if s.joins == nil {
		s.joins = make(map[string]*joinInflight)
	}
	s.joins[h.ID] = fl
	s.mu.Unlock()
	if err := m.market.Post(h, m.onJoinAssignment); err != nil {
		s.mu.Lock()
		delete(s.joins, h.ID)
		s.mu.Unlock()
		m.traceDirectGone(fl.span, err.Error())
		m.account.Refund(cost)
		scope.refund(cost)
		for _, r := range resolved {
			done(r.key, r.out)
		}
		for _, p := range unresolved {
			done(hit.PairKey(p.l.Key, p.r.Key), Outcome{Err: err})
		}
		return
	}
	if cause := scope.registerHIT(h.ID); cause != nil {
		m.cancelScopeHIT(h.ID, scope, cause)
	}
	for _, r := range resolved {
		done(r.key, r.out)
	}
}

type joinInflight struct {
	state    *taskState
	def      *qlang.TaskDef
	scope    *Scope                 // owning query scope (nil = unscoped)
	cost     budget.Cents           // charged at post time
	items    map[string]pendingItem // every grid pair, keyed by pair key
	order    []string               // pair keys in row-major grid order
	need     map[string]bool        // pairs the caller is waiting on
	answers  map[string][]relation.Value
	byWorker []hit.Answers
	received int
	needed   int
	postedAt mturk.VirtualTime
	backend  string // serving backend name, recorded at post time
	reward   int64  // per-assignment price actually charged
	done     func(string, Outcome)
	span     *obs.Span // HIT trace span (nil = tracing off)
}

func (m *Manager) onJoinAssignment(res mturk.AssignmentResult) {
	s := m.flights.stripeFor(res.HITID)
	s.mu.Lock()
	fl, ok := s.joins[res.HITID]
	if !ok {
		s.mu.Unlock()
		return
	}
	for key, v := range res.Answers.Values {
		fl.answers[key] = append(fl.answers[key], v)
	}
	fl.byWorker = append(fl.byWorker, res.Answers)
	fl.received++
	m.traceDirectAssignment(fl.span, fl.def.Name, res.Answers.WorkerID)
	if fl.received < fl.needed {
		s.mu.Unlock()
		return
	}
	delete(s.joins, res.HITID)
	s.mu.Unlock()
	fl.scope.unregisterHIT(res.HITID)
	m.finalizeJoin(fl)
}

// finalizeJoin resolves every pair of a completed (or partially failed)
// join-grid HIT in grid order. No manager lock is held while it runs.
func (m *Manager) finalizeJoin(fl *joinInflight) {
	st := fl.state
	latencyMin := (m.market.Clock().Now() - fl.postedAt).Minutes()
	st.latency.Observe(latencyMin)
	m.traceDirectDone(fl.span, fl.def.Name, fl.backend, latencyMin)
	j := m.getJournal()
	if j != nil {
		j.Append(store.Record{Kind: store.KindLatency, Task: fl.def.Name, X: latencyMin})
	}
	base := m.basePolicy()
	st.mu.Lock()
	pol := st.effectivePolicyLocked(base)
	st.mu.Unlock()

	type resolution struct {
		key string
		out Outcome
	}
	var resolved []resolution
	var agreeSum float64
	var agreeN int
	for _, key := range fl.order {
		item := fl.items[key]
		answers := fl.answers[key]
		b, conf := stats.MajorityBool(answers)
		out := Outcome{Value: relation.NewBool(b), Answers: answers, Agreement: conf}
		st.agreement.Observe(conf)
		agreeSum += conf
		agreeN++
		st.selectivity.Observe(b)
		m.noteWorkerVotes(fl.byWorker, key, b)
		if pol.UseCache {
			m.cache.Put(cache.NewKey(fl.def.Name, item.args), cache.Entry{Answers: answers})
		}
		if pol.TrainModel {
			if tm, ok := m.models.For(fl.def.Name); ok {
				tm.Train(item.args, b)
			}
		}
		if j != nil {
			m.journalItem(j, pol, fl.def, item.args, "", answers, out)
		}
		if fl.need[key] {
			resolved = append(resolved, resolution{key: key, out: out})
		}
	}
	if agreeN > 0 {
		m.observeBackend(fl.backend, fl.def.Type, fl.reward, latencyMin, agreeSum/float64(agreeN))
	}
	for _, r := range resolved {
		fl.done(r.key, r.out)
	}
}

// dedupeJoinItems extracts the distinct left (or right) items of the
// unresolved pairs, preserving first-seen order.
func dedupeJoinItems(pairs []hitPair, left bool) []JoinItem {
	seen := make(map[string]bool)
	var out []JoinItem
	for _, p := range pairs {
		it := p.r
		if left {
			it = p.l
		}
		if !seen[it.Key] {
			seen[it.Key] = true
			out = append(out, it)
		}
	}
	return out
}

// joinResponse derives the JoinColumns response for a join task,
// defaulting labels when the definition used YesNo.
func joinResponse(def *qlang.TaskDef) qlang.Response {
	if def.Response.Kind == qlang.ResponseJoinColumns {
		return def.Response
	}
	return qlang.Response{
		Kind:      qlang.ResponseJoinColumns,
		LeftLabel: "Left", RightLabel: "Right",
	}
}
