package taskmgr

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/relation"
)

// obsRig arms a tracer on a fresh rig and opens a query root span
// attached to a scope, the way core.Engine does per query.
func obsRig(t *testing.T, cfg crowd.Config) (*Manager, *mturk.Clock, *obs.Tracer, *Scope, *obs.Span) {
	t.Helper()
	m, clock := newRig(t, catOracle, cfg, 0)
	tr := obs.New(clock.Now, obs.NewRegistry())
	m.SetObs(tr)
	s := m.NewScope()
	root := tr.StartRoot(obs.KindQuery, "SELECT test")
	s.SetSpan(root)
	return m, clock, tr, s, root
}

// Satellite: Scope.Cancel mid-query must close every open span in the
// query's tree — no orphans — so the tracer can recycle the whole tree.
func TestScopeCancelClosesSpanTree(t *testing.T) {
	// A crowd that never finishes an assignment keeps every posted HIT
	// (and its span) open until the cancel.
	m, _, tr, s, root := obsRig(t, crowd.Config{Workers: 1, Overhead: 1 << 40})
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 3, BatchSize: 1, PriceCents: 1, Linger: time.Minute, UseCache: true})
	var resolved atomic.Int64
	for i := 0; i < 4; i++ {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(relationKey(i))}, Scope: s,
			Done: func(Outcome) { resolved.Add(1) }})
	}
	if m.Inflight() == 0 {
		t.Fatal("no HITs in flight; the rig posted nothing to cancel")
	}
	if open := tr.OpenSpans(root); open < 4 {
		t.Fatalf("open spans before cancel = %d, want ≥4 (root + batches + HITs)", open)
	}

	s.Cancel(nil)
	if got := resolved.Load(); got != 4 {
		t.Fatalf("cancel resolved %d of 4 outcomes", got)
	}
	if open := tr.OpenSpans(root); open != 0 {
		var orphans []string
		root.Walk(func(sp *obs.Span) {
			if !sp.Ended() {
				orphans = append(orphans, string(sp.Kind)+":"+sp.Name)
			}
		})
		t.Fatalf("cancel left %d spans open: %v", open, orphans)
	}
	if !tr.Release(root) {
		t.Fatal("tracer refused to release a fully closed tree")
	}
}

// Satellite: when a cancellation refunds unconsumed adaptive extension
// slots, the refunded remainder must be annotated onto the extension
// spans that bought them.
func TestCancelAnnotatesExtensionRefund(t *testing.T) {
	// A coin-flip crowd leaves split votes unsure, so the adaptive loop
	// buys extensions. A single worker serializes assignment completions
	// one per clock step, so stopping the pump the moment the first
	// extension is purchased guarantees its extra assignment is still
	// outstanding when the cancel lands.
	m, clock, tr, s, root := obsRig(t, crowd.Config{Workers: 1, MeanSkill: 0.5, SkillStd: 1e-9})
	m.SetInference("em", 2, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 3, BatchSize: 1, PriceCents: 1, Linger: time.Minute, UseCache: true})
	for i := 0; i < 12; i++ {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(relationKey(i))}, Scope: s,
			Done: func(Outcome) {}})
	}
	// Pump one event at a time (runUntil only checks its condition on an
	// empty queue, far too late): stop at the first purchased extension,
	// whose extra assignment is then provably still outstanding.
	for m.InferenceStats().Extensions == 0 {
		if !clock.Step() {
			m.FlushAll()
			if !clock.Step() {
				t.Fatal("run drained without ever extending; pick another seed")
			}
		}
	}
	if m.Inflight() == 0 {
		t.Fatal("no HIT in flight at the first extension")
	}

	s.Cancel(nil)
	if open := tr.OpenSpans(root); open != 0 {
		t.Fatalf("cancel left %d spans open", open)
	}
	var extSpans, annotated int
	root.Walk(func(sp *obs.Span) {
		if sp.Kind != obs.KindHIT || sp.Name != "extend" {
			return
		}
		extSpans++
		if v, ok := sp.Attr("refunded_remainder_cents"); ok {
			annotated++
			if v != "1" {
				t.Errorf("refunded remainder = %q, want %q (1¢ reward)", v, "1")
			}
		}
	})
	if extSpans == 0 {
		t.Fatal("no extension spans recorded despite Extensions > 0")
	}
	if annotated == 0 {
		t.Fatalf("none of %d extension spans carry the refund annotation", extSpans)
	}
}
