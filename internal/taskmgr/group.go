package taskmgr

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/hit"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/store"
)

// SubmitGroup posts several *different* boolean tasks about (typically)
// one tuple as a single HIT — the paper's operator-grouping optimization:
// "It can also generate HITs from a set of operators (e.g., grouping
// multiple filter operations over the same tuple)." Every request's Done
// fires exactly once. Requests answerable from cache or model are
// resolved without joining the HIT.
func (m *Manager) SubmitGroup(reqs []Request) error {
	if len(reqs) == 0 {
		return nil
	}
	for _, r := range reqs {
		if r.Def == nil || r.Done == nil {
			return fmt.Errorf("taskmgr: group request needs a task definition and Done callback")
		}
		if !isBooleanTask(r.Def) {
			return fmt.Errorf("taskmgr: grouped HITs require boolean tasks; %s is %v", r.Def.Name, r.Def.Type)
		}
	}

	// Grouped requests come from one operator over one tuple, so they
	// share a scope; a HIT still belongs to exactly one scope.
	scope := reqs[0].Scope
	if cause := scope.Err(); cause != nil {
		for _, r := range reqs {
			r.Done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", r.Def.Name, cause)})
		}
		return nil
	}

	lead := m.state(reqs[0].Def.Name, reqs[0].Def)
	base := m.basePolicy()
	lead.mu.Lock()
	pol := lead.scopedPolicyLocked(base, scope)
	lead.mu.Unlock()

	type resolution struct {
		done func(Outcome)
		out  Outcome
	}
	var resolved []resolution
	var remaining []Request
	for _, r := range reqs {
		st := m.state(r.Def.Name, r.Def)
		st.mu.Lock()
		st.submitted++
		st.mu.Unlock()
		if pol.UseCache {
			if entry, ok := m.cache.Get(cache.NewKey(r.Def.Name, r.Args)); ok && len(entry.Answers) > 0 {
				st.mu.Lock()
				st.cacheHits++
				st.mu.Unlock()
				out := reduce(r.Def, entry.Answers)
				out.FromCache = true
				st.observeSelectivity(out.Value.Truthy(), r.StatSide)
				resolved = append(resolved, resolution{done: r.Done, out: out})
				continue
			}
		}
		if pol.UseModel {
			if tm, ok := m.models.For(r.Def.Name); ok {
				if v, _, ok := tm.TryAnswer(r.Args); ok {
					st.mu.Lock()
					st.modelAnswers++
					st.mu.Unlock()
					st.observeSelectivity(v.Truthy(), r.StatSide)
					resolved = append(resolved, resolution{done: r.Done,
						out: Outcome{Value: v, Answers: []relation.Value{v}, Agreement: 1, FromModel: true}})
					continue
				}
			}
		}
		remaining = append(remaining, r)
	}
	if len(remaining) == 0 {
		for _, r := range resolved {
			r.done(r.out)
		}
		return nil
	}

	price := m.priceFor(remaining[0].Def, pol)
	h := &hit.HIT{
		ID:          m.market.NewHITID(),
		Task:        remaining[0].Def.Name,
		Type:        qlang.TaskFilter,
		Title:       "Answer a few questions",
		Question:    fmt.Sprintf("Answer the following %d questions about the data shown.", len(remaining)),
		Response:    qlang.Response{Kind: qlang.ResponseYesNo},
		RewardCents: price,
		Assignments: pol.Assignments,
	}
	byKey := make(map[string]pendingItem, len(remaining))
	keys := make([]string, 0, len(remaining))
	for _, r := range remaining {
		key := m.newKey()
		prompt := r.Prompt
		if prompt == "" {
			prompt = hit.RenderText(r.Def.Text, r.Def.TextArgs, r.Def.Params, r.Args)
		}
		h.Items = append(h.Items, hit.Item{Key: key, Args: r.Args, Task: r.Def.Name, Prompt: prompt})
		h.GroupKeys = append(h.GroupKeys, r.Def.Name)
		byKey[key] = pendingItem{key: key, args: r.Args, def: r.Def, side: r.StatSide, done: r.Done, span: r.Trace}
		keys = append(keys, key)
	}

	cost := budget.Cents(price * int64(pol.Assignments))
	if err := scope.spend(cost); err != nil {
		for _, r := range resolved {
			r.done(r.out)
		}
		for _, r := range remaining {
			r.Done(Outcome{Err: fmt.Errorf("taskmgr: group: %w", err)})
		}
		return nil
	}
	if err := m.account.Spend(cost); err != nil {
		scope.refund(cost)
		for _, r := range resolved {
			r.done(r.out)
		}
		for _, r := range remaining {
			r.Done(Outcome{Err: fmt.Errorf("taskmgr: group: %w", err)})
		}
		return nil
	}
	// Attribute cost and counters to each member task evenly enough for
	// the dashboard: the HIT is counted once under the lead task, the
	// questions under their own tasks.
	lead = m.state(remaining[0].Def.Name, remaining[0].Def)
	lead.mu.Lock()
	lead.hitsPosted++
	lead.spent += cost
	lead.mu.Unlock()
	for _, r := range remaining {
		st := m.state(r.Def.Name, r.Def)
		st.mu.Lock()
		st.questionsAsked++
		st.mu.Unlock()
	}

	fl := &inflightHIT{
		hit:      h,
		state:    lead,
		shares:   []hitShare{{scope: scope, keys: keys, cost: cost}},
		cost:     cost,
		byKey:    byKey,
		answers:  make(map[string][]relation.Value, len(remaining)),
		needed:   pol.Assignments,
		assign:   pol.Assignments,
		postedAt: m.market.Clock().Now(),
		backend:  m.servingBackend(remaining[0].Def),
		group:    true,
	}
	if sp := m.traceDirectHIT(scope, h.ID, h.Task, fl.backend, cost); sp != nil {
		sp.Annotate("grouped", fmt.Sprintf("%d", len(remaining)))
		fl.span = sp
		items := make([]pendingItem, 0, len(keys))
		for _, key := range keys {
			items = append(items, byKey[key])
		}
		attributeOps(fl, items, cost)
	}
	s := m.flights.stripeFor(h.ID)
	s.mu.Lock()
	if s.hits == nil {
		s.hits = make(map[string]*inflightHIT)
	}
	s.hits[h.ID] = fl
	s.mu.Unlock()
	if err := m.market.Post(h, m.onAssignment); err != nil {
		s.mu.Lock()
		delete(s.hits, h.ID)
		s.mu.Unlock()
		m.traceDirectGone(fl.span, err.Error())
		m.account.Refund(cost)
		scope.refund(cost)
		for _, r := range resolved {
			r.done(r.out)
		}
		for _, r := range remaining {
			r.Done(Outcome{Err: err})
		}
		return nil
	}
	if cause := scope.registerHIT(h.ID); cause != nil {
		m.cancelScopeHIT(h.ID, scope, cause)
	}
	for _, r := range resolved {
		r.done(r.out)
	}
	return nil
}

// finalizeGroup resolves a grouped HIT in item order, attributing
// selectivity, caching and training per item task rather than per HIT
// task. No manager lock is held while it runs.
func (m *Manager) finalizeGroup(fl *inflightHIT) {
	latencyMin := (m.market.Clock().Now() - fl.postedAt).Minutes()
	fl.state.latency.Observe(latencyMin)
	m.traceHITDone(fl, latencyMin, nil)
	j := m.getJournal()
	if j != nil {
		j.Append(store.Record{Kind: store.KindLatency, Task: fl.hit.Task, X: latencyMin})
	}
	base := m.basePolicy()
	fl.state.mu.Lock()
	pol := fl.state.effectivePolicyLocked(base)
	fl.state.mu.Unlock()

	type resolution struct {
		done func(Outcome)
		out  Outcome
	}
	var resolved []resolution
	var agreeSum float64
	var agreeN int
	for _, hi := range fl.hit.Items {
		item, ok := fl.byKey[hi.Key]
		if !ok {
			continue
		}
		st := m.state(item.def.Name, item.def)
		answers := fl.answers[hi.Key]
		b, conf := stats.MajorityBool(answers)
		out := Outcome{Value: relation.NewBool(b), Answers: answers, Agreement: conf}
		st.agreement.Observe(conf)
		agreeSum += conf
		agreeN++
		st.observeSelectivity(b, item.side)
		m.noteWorkerVotes(fl.byWorker, hi.Key, b)
		if pol.UseCache {
			m.cache.Put(cache.NewKey(item.def.Name, item.args), cache.Entry{Answers: answers})
		}
		if pol.TrainModel {
			if tm, ok := m.models.For(item.def.Name); ok {
				tm.Train(item.args, b)
			}
		}
		if j != nil {
			m.journalItem(j, pol, item.def, item.args, item.side, answers, out)
		}
		resolved = append(resolved, resolution{done: item.done, out: out})
	}
	if agreeN > 0 {
		m.observeBackend(fl.backend, fl.hit.Type, fl.hit.RewardCents, latencyMin, agreeSum/float64(agreeN))
	}
	for _, r := range resolved {
		r.done(r.out)
	}
}
