package taskmgr

import (
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/store"
)

// RestoreSummary reports what Restore installed, for the dashboard's
// warm-start panel and the load harness.
type RestoreSummary struct {
	// CacheEntries / CacheAnswers are the Task Cache contents restored.
	CacheEntries, CacheAnswers int64
	// Observations totals the statistics evidence restored (selectivity
	// trials + latency and agreement observation counts).
	Observations int64
	// Examples counts model training examples staged for attachment;
	// Workers and Votes the reputation restored.
	Examples, Workers, Votes int64
	// EntriesByTask breaks CacheEntries down per task so the dashboard
	// can price what a re-run would have paid under each task's policy.
	EntriesByTask map[string]int64
}

// Restore installs a replayed knowledge-store state into the manager's
// learning layers: cache entries become live cache contents, estimator
// counts become Statistics Manager state (combined and per join side),
// training examples are staged in the model registry (they train
// whatever model is attached, now or later), and reputation totals are
// folded into the worker records. Call it before submitting work —
// typically from engine construction — and call it at most once per
// store: restoring the same state twice double-counts evidence.
func (m *Manager) Restore(s *store.State) RestoreSummary {
	sum := RestoreSummary{EntriesByTask: make(map[string]int64)}

	for _, e := range s.CacheEntries() {
		// The cache copies on Put, so the state's slices stay untouched.
		m.cache.Put(e.Key, cache.Entry{Answers: e.Answers})
		sum.CacheEntries++
		sum.CacheAnswers += int64(len(e.Answers))
		sum.EntriesByTask[e.Key.Task]++
	}

	for _, task := range s.StatTasks() {
		st := m.state(task, nil)
		var combined stats.SelectivityState
		for side, counts := range s.Selectivities(task) {
			combined.Passes += counts.Passes
			combined.Trials += counts.Trials
			sum.Observations += int64(counts.Trials)
			if side != "" {
				st.sideEstimator(side).SetState(counts)
			}
		}
		if combined.Trials > 0 {
			st.selectivity.SetState(combined)
		}
		if lat := s.Latency(task); lat.N > 0 {
			st.latency.SetState(lat)
			sum.Observations += int64(lat.N)
		}
		if agr := s.Agreement(task); agr.N > 0 {
			st.agreement.SetState(agr)
			sum.Observations += int64(agr.N)
		}
		if ra := s.RankAgreement(task); ra.N > 0 {
			st.rankAgreementEstimator().SetState(ra)
			sum.Observations += int64(ra.N)
		}
	}

	for be, kinds := range s.BackendObservations() {
		for kind, st := range kinds {
			m.book.SetState(be, kind, st)
			sum.Observations += int64(st.Quality.N)
		}
	}

	for task, examples := range s.ModelExamples() {
		m.models.SeedExamples(task, examples)
		sum.Examples += int64(len(examples))
	}

	for worker, counts := range s.Reputations() {
		m.RestoreReputation(worker, counts.Votes, counts.Agreed)
		sum.Workers++
		sum.Votes += counts.Votes
	}

	for worker, st := range s.WorkerQualityStates() {
		m.RestoreWorkerQuality(worker, st)
		sum.Observations += int64(st.N)
	}
	return sum
}
