package taskmgr

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/hit"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// newRig builds a manager over a simulated crowd with the given oracle.
func newRig(t *testing.T, oracle crowd.Oracle, cfg crowd.Config, limit budget.Cents) (*Manager, *mturk.Clock) {
	t.Helper()
	clock := mturk.NewClock()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.AbandonRate == 0 {
		cfg.AbandonRate = 1e-12
	}
	if cfg.SpamFraction == 0 {
		cfg.SpamFraction = 1e-12
	}
	pool := crowd.NewPool(cfg, oracle)
	market := mturk.NewMarketplace(clock, pool)
	return New(market, cache.New(), model.NewRegistry(), budget.NewAccount(limit)), clock
}

var catOracle = crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
	return relation.NewBool(strings.Contains(args[0].Str(), "cat"))
})

func filterDef() *qlang.TaskDef {
	def, err := qlang.ParseTaskDef(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
`)
	if err != nil {
		panic(err)
	}
	return def
}

func joinDef() *qlang.TaskDef {
	def, err := qlang.ParseTaskDef(`
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
`)
	if err != nil {
		panic(err)
	}
	return def
}

// runUntil pumps the clock until cond holds (or fails the test).
func runUntil(t *testing.T, clock *mturk.Clock, cond func() bool) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		clock.Run(cond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("clock pump stuck")
	}
}

func submitAndWait(t *testing.T, m *Manager, clock *mturk.Clock, def *qlang.TaskDef, args ...relation.Value) Outcome {
	t.Helper()
	var mu sync.Mutex
	var got *Outcome
	m.Submit(Request{Def: def, Args: args, Done: func(o Outcome) {
		mu.Lock()
		got = &o
		mu.Unlock()
	}})
	runUntil(t, clock, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
	return *got
}

func TestSubmitFilterMajority(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 0)
	out := submitAndWait(t, m, clock, filterDef(), relation.NewImage("cat-1.png"))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.Value.Bool() {
		t.Fatalf("cat not recognized: %+v", out)
	}
	if len(out.Answers) != 3 {
		t.Fatalf("answers = %d, want 3 (default redundancy)", len(out.Answers))
	}
	if out.FromCache || out.FromModel {
		t.Fatal("first answer cannot be cache/model")
	}
	s := m.StatsFor("iscat")
	if s.HITsPosted != 1 || s.QuestionsAsked != 1 || s.Submitted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SpentCents != 3 { // 3 assignments × 1 cent
		t.Fatalf("spent = %v", s.SpentCents)
	}
	if s.MeanLatencyMin <= 0 {
		t.Fatal("latency not observed")
	}
}

func TestCacheHitIsFree(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 0)
	def := filterDef()
	first := submitAndWait(t, m, clock, def, relation.NewImage("cat-1.png"))
	if first.FromCache {
		t.Fatal("first call cached?")
	}
	second := submitAndWait(t, m, clock, def, relation.NewImage("cat-1.png"))
	if !second.FromCache {
		t.Fatal("second call should hit the cache")
	}
	if second.Value.Bool() != first.Value.Bool() {
		t.Fatal("cache changed the answer")
	}
	s := m.StatsFor("iscat")
	if s.CacheHits != 1 || s.HITsPosted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := m.Account().Spent(); got != 3 {
		t.Fatalf("spent = %v; cache hit must be free", got)
	}
}

func TestBatchingReducesHITs(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 5, PriceCents: 1,
		Linger: time.Minute, UseCache: true})
	var mu sync.Mutex
	done := 0
	for i := 0; i < 10; i++ {
		img := fmt.Sprintf("cat-%d.png", i)
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(img)},
			Done: func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	}
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 10 })
	s := m.StatsFor("iscat")
	if s.HITsPosted != 2 {
		t.Fatalf("10 tuples at batch 5 should be 2 HITs, got %d", s.HITsPosted)
	}
	if s.QuestionsAsked != 10 {
		t.Fatalf("questions = %d", s.QuestionsAsked)
	}
	if m.Account().Spent() != 2 {
		t.Fatalf("spent = %v; batching should cut cost", m.Account().Spent())
	}
}

func TestLingerFlushesPartialBatch(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 10, PriceCents: 1,
		Linger: 30 * time.Second, UseCache: true})
	var mu sync.Mutex
	done := 0
	for i := 0; i < 3; i++ { // far less than the batch size
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(fmt.Sprintf("cat-%d", i))},
			Done: func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	}
	if m.Pending() != 3 {
		t.Fatalf("pending = %d", m.Pending())
	}
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 3 })
	if m.StatsFor("iscat").HITsPosted != 1 {
		t.Fatal("linger should post exactly one partial HIT")
	}
}

func TestExplicitFlush(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 10, PriceCents: 1,
		Linger: 0, UseCache: true}) // no linger: only explicit flush
	var mu sync.Mutex
	done := 0
	m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage("cat-a")},
		Done: func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	m.FlushAll()
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 1 })
	if m.Pending() != 0 || m.Inflight() != 0 {
		t.Fatalf("pending=%d inflight=%d", m.Pending(), m.Inflight())
	}
}

func TestBudgetExhaustionFailsTask(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 2) // 2 cents total
	def := filterDef()                                                 // needs 3 cents (3 assignments)
	out := submitAndWait(t, m, clock, def, relation.NewImage("cat-1.png"))
	if out.Err == nil {
		t.Fatal("expected budget error")
	}
	if m.Account().Spent() != 0 {
		t.Fatalf("failed task still spent %v", m.Account().Spent())
	}
}

func TestModelSubstitutesAfterTraining(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.97, Workers: 300}, 0)
	def := filterDef()
	m.Models().Attach(model.NewTaskModel(def.Name, model.NewNaiveBayes(), 30, 0.8))
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 1, PriceCents: 1,
		Linger: time.Minute, UseCache: true, UseModel: true, TrainModel: true})
	// Phase 1: train with 40 distinct images.
	var mu sync.Mutex
	done := 0
	for i := 0; i < 40; i++ {
		img := fmt.Sprintf("cat-photo-%04d.png", i)
		if i%2 == 1 {
			img = fmt.Sprintf("dog-photo-%04d.png", i)
		}
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(img)},
			Done: func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	}
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 40 })
	// Phase 2: fresh images; the model should now answer some for free.
	spentBefore := m.Account().Spent()
	for i := 0; i < 40; i++ {
		img := fmt.Sprintf("cat-photo-%04d.png", 1000+i)
		if i%2 == 1 {
			img = fmt.Sprintf("dog-photo-%04d.png", 1000+i)
		}
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(img)},
			Done: func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	}
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 80 })
	s := m.StatsFor("iscat")
	if s.ModelAnswers == 0 {
		t.Fatal("model never substituted")
	}
	humanCost := m.Account().Spent() - spentBefore
	if humanCost >= 40 {
		t.Fatalf("model saved nothing: phase-2 cost %v", humanCost)
	}
}

func TestJoinBlockAnswersEveryPair(t *testing.T) {
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		a := strings.SplitN(args[0].Str(), "-", 2)[0]
		b := strings.SplitN(args[1].Str(), "-", 2)[0]
		return relation.NewBool(a == b)
	})
	m, clock := newRig(t, oracle, crowd.Config{MeanSkill: 0.97, Workers: 200}, 0)
	def := joinDef()
	left := []JoinItem{
		{Key: "l1", Args: []relation.Value{relation.NewImage("ann-celeb.png")}},
		{Key: "l2", Args: []relation.Value{relation.NewImage("bob-celeb.png")}},
	}
	right := []JoinItem{
		{Key: "r1", Args: []relation.Value{relation.NewImage("ann-spotted.png")}},
		{Key: "r2", Args: []relation.Value{relation.NewImage("col-spotted.png")}},
	}
	var mu sync.Mutex
	got := map[string]bool{}
	m.JoinBlock(def, left, right, func(key string, out Outcome) {
		mu.Lock()
		got[key] = out.Value.Bool()
		mu.Unlock()
	})
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 4 })
	if !got[hit.PairKey("l1", "r1")] {
		t.Error("ann pair should match")
	}
	if got[hit.PairKey("l2", "r2")] || got[hit.PairKey("l1", "r2")] || got[hit.PairKey("l2", "r1")] {
		t.Errorf("false matches: %v", got)
	}
	s := m.StatsFor("sameperson")
	if s.HITsPosted != 1 {
		t.Fatalf("whole block should be one HIT, got %d", s.HITsPosted)
	}
	if s.QuestionsAsked != 4 {
		t.Fatalf("questions = %d", s.QuestionsAsked)
	}
}

func TestJoinBlockFullyCachedPostsNothing(t *testing.T) {
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		return relation.NewBool(true)
	})
	m, clock := newRig(t, oracle, crowd.Config{MeanSkill: 0.99}, 0)
	def := joinDef()
	left := []JoinItem{{Key: "l1", Args: []relation.Value{relation.NewImage("a.png")}}}
	right := []JoinItem{{Key: "r1", Args: []relation.Value{relation.NewImage("b.png")}}}
	var mu sync.Mutex
	n := 0
	m.JoinBlock(def, left, right, func(string, Outcome) { mu.Lock(); n++; mu.Unlock() })
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return n == 1 })
	spent := m.Account().Spent()
	// Re-run the same block with different keys but identical values.
	left2 := []JoinItem{{Key: "x1", Args: []relation.Value{relation.NewImage("a.png")}}}
	right2 := []JoinItem{{Key: "y1", Args: []relation.Value{relation.NewImage("b.png")}}}
	m.JoinBlock(def, left2, right2, func(key string, out Outcome) {
		mu.Lock()
		n++
		mu.Unlock()
		if !out.FromCache {
			t.Error("expected cache hit")
		}
	})
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return n == 2 })
	if m.Account().Spent() != spent {
		t.Fatal("fully cached block still spent money")
	}
	if m.StatsFor("sameperson").HITsPosted != 1 {
		t.Fatal("second block should post no HIT")
	}
}

func TestPolicyMergeAndOverrides(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{}, 0)
	def := filterDef()
	def.Assignments = 7
	def.PriceCents = 5
	pol := m.PolicyFor(def)
	if pol.Assignments != 7 || pol.PriceCents != 5 {
		t.Fatalf("task overrides lost: %+v", pol)
	}
	if pol.BatchSize != 1 || !pol.UseCache {
		t.Fatalf("defaults lost: %+v", pol)
	}
	m.SetBasePolicy(Policy{Assignments: 2, BatchSize: 4, PriceCents: 2, UseCache: true})
	fresh := filterDef() // no overrides, distinct task name
	fresh.Name = "isDog"
	pol2 := m.PolicyFor(fresh)
	if pol2.Assignments != 2 || pol2.BatchSize != 4 {
		t.Fatalf("base policy ignored: %+v", pol2)
	}
}

func TestRatingTaskReducesToMean(t *testing.T) {
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		return relation.NewInt(4)
	})
	m, clock := newRig(t, oracle, crowd.Config{MeanSkill: 0.99, Workers: 100}, 0)
	def, err := qlang.ParseTaskDef(`
TASK score(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "Rate %s", pic
  Response: Rating(1, 5)
`)
	if err != nil {
		t.Fatal(err)
	}
	out := submitAndWait(t, m, clock, def, relation.NewImage("a.png"))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Value.Kind() != relation.KindFloat {
		t.Fatalf("rating reduce kind = %v", out.Value.Kind())
	}
	if v := out.Value.Float(); v < 2.5 || v > 5 {
		t.Fatalf("mean rating = %v, want near 4", v)
	}
}

func TestQuestionTaskMajorityValue(t *testing.T) {
	truth := relation.NewTuple(
		relation.Field{Name: "CEO", Value: relation.NewString("Ada Lovelace")},
		relation.Field{Name: "Phone", Value: relation.NewString("555-0100")},
	)
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value { return truth })
	m, clock := newRig(t, oracle, crowd.Config{MeanSkill: 0.95, Workers: 100}, 0)
	def, err := qlang.ParseTaskDef(`
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO of %s", companyName
  Response: Form(("CEO", String), ("Phone", String))
`)
	if err != nil {
		t.Fatal(err)
	}
	def.Assignments = 5
	out := submitAndWait(t, m, clock, def, relation.NewString("Acme"))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.Value.Equal(truth) {
		t.Fatalf("majority answer = %v, want %v", out.Value, truth)
	}
	if out.Agreement <= 0.5 {
		t.Fatalf("agreement = %v", out.Agreement)
	}
}

func TestGroupedPromptsCarriedPerItem(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.95}, 0)
	def := filterDef()
	m.SetPolicy(def.Name, Policy{Assignments: 1, BatchSize: 2, PriceCents: 1,
		Linger: time.Minute, UseCache: true})
	var mu sync.Mutex
	done := 0
	for i := 0; i < 2; i++ {
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(fmt.Sprintf("cat-%d", i))},
			Prompt: fmt.Sprintf("Custom prompt %d", i),
			Done:   func(Outcome) { mu.Lock(); done++; mu.Unlock() }})
	}
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == 2 })
	if m.StatsFor("iscat").HITsPosted != 1 {
		t.Fatal("grouping should share one HIT")
	}
}

func TestStatsSorted(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{}, 0)
	m.SetPolicy("zeta", DefaultPolicy())
	m.SetPolicy("alpha", DefaultPolicy())
	all := m.Stats()
	if len(all) != 2 || all[0].Task != "alpha" || all[1].Task != "zeta" {
		t.Fatalf("stats order = %v", all)
	}
}
