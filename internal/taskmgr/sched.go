package taskmgr

import (
	"fmt"
	"sync"

	"repro/internal/budget"
	"repro/internal/mturk"
)

// This file is the admission scheduler: every cut batch passes through
// it on the way to the marketplace. With no gate configured batches
// post immediately in cut order, preserving the ungated behavior; with
// SetAdmission(n) at most n scheduler-admitted HITs are in flight at
// once and further batches queue, ordered by priority, then weighted
// fair share of admitted HITs per scope, then FIFO — so a thousand
// queued queries degrade gracefully instead of flooding the
// marketplace, and no scope can starve another at equal priority.

// queuedBatch is one cut batch waiting for an admission slot.
type queuedBatch struct {
	st     *taskState
	batch  []pendingItem
	seq    int64
	prio   int    // highest item priority in the batch
	owner  *Scope // fair-share accounting key (first item's scope)
	weight int    // owner's fair-share weight at enqueue time
	at     mturk.VirtualTime // enqueue time; tracing's admission-wait basis
	// charged records the provisional per-scope cost released when the
	// batch is admitted (or its scope swept); see Scope.addQueuedCost.
	charged []provCharge
}

type provCharge struct {
	scope *Scope
	cost  budget.Cents
}

func (qb *queuedBatch) releaseProvisional() {
	for _, pc := range qb.charged {
		pc.scope.addQueuedCost(-pc.cost)
	}
	qb.charged = nil
}

type scheduler struct {
	mu          sync.Mutex
	max         int // 0 = unlimited
	inflight    int // admitted HITs not yet retired
	nextSeq     int64
	queue       []*queuedBatch
	admitted    map[*Scope]int64 // fair-share history per owner
	dispatching bool
}

// SetAdmission caps concurrently in-flight batch HITs posted through
// the scheduler (0 = unlimited). Lowering the cap does not recall
// posted HITs; it only gates future admissions. Raising it admits
// queued batches immediately.
func (m *Manager) SetAdmission(maxInflight int) {
	m.sched.mu.Lock()
	m.sched.max = maxInflight
	m.sched.mu.Unlock()
	m.dispatch()
}

// enqueueBatch registers one cut batch with the scheduler, recording a
// provisional per-scope cost so Scope.RemainingBudget sees
// queued-but-unposted work (the authoritative split is re-derived at
// post time, when canceled scopes have been filtered out).
func (m *Manager) enqueueBatch(st *taskState, batch []pendingItem) {
	pol := m.batchPolicy(st, batch)
	cost := budget.Cents(pol.PriceCents * int64(pol.Assignments))
	prio := batch[0].priority
	for _, it := range batch[1:] {
		if it.priority > prio {
			prio = it.priority
		}
	}
	shares := shareOut(batch, cost)
	charged := make([]provCharge, 0, len(shares))
	for _, sh := range shares {
		sh.scope.addQueuedCost(sh.cost)
		charged = append(charged, provCharge{scope: sh.scope, cost: sh.cost})
	}
	s := &m.sched
	s.mu.Lock()
	s.nextSeq++
	s.queue = append(s.queue, &queuedBatch{
		st:      st,
		batch:   batch,
		seq:     s.nextSeq,
		prio:    prio,
		owner:   batch[0].scope,
		weight:  batch[0].scope.weightNow(),
		at:      m.market.Clock().Now(),
		charged: charged,
	})
	s.mu.Unlock()
}

// dispatch admits queued batches while the gate has room. Only one
// goroutine dispatches at a time; the others return immediately — the
// active dispatcher holds the flag from its final queue check to the
// clear, so batches enqueued concurrently are never stranded.
func (m *Manager) dispatch() {
	s := &m.sched
	s.mu.Lock()
	if s.dispatching {
		s.mu.Unlock()
		return
	}
	s.dispatching = true
	for len(s.queue) > 0 && (s.max <= 0 || s.inflight < s.max) {
		qb := s.takeLocked()
		s.inflight++
		if s.admitted == nil {
			s.admitted = make(map[*Scope]int64)
		}
		s.admitted[qb.owner]++
		s.mu.Unlock()
		qb.releaseProvisional()
		posted := m.postBatch(qb.st, qb.batch, qb.at)
		s.mu.Lock()
		if !posted {
			s.inflight--
		}
	}
	s.dispatching = false
	s.mu.Unlock()
}

// hitRetired releases an admission slot when a scheduler-admitted HIT
// leaves the in-flight table (completion, terminal assignment failure,
// or full expiry), then admits queued work into the freed slot.
func (m *Manager) hitRetired(fl *inflightHIT) {
	if !fl.admitted {
		return
	}
	m.sched.mu.Lock()
	m.sched.inflight--
	m.sched.mu.Unlock()
	m.dispatch()
}

// takeLocked pops the best queued batch: highest priority first, then
// the owner with the fewest admitted HITs per unit of fair-share
// weight (compared by cross-multiplication, so the arithmetic stays in
// integers), then lowest sequence number (FIFO). The scan is linear —
// queues are bounded by the burst the gate is absorbing. sched.mu
// held.
func (s *scheduler) takeLocked() *queuedBatch {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		if s.betterLocked(s.queue[i], s.queue[best]) {
			best = i
		}
	}
	qb := s.queue[best]
	copy(s.queue[best:], s.queue[best+1:])
	s.queue[len(s.queue)-1] = nil
	s.queue = s.queue[:len(s.queue)-1]
	return qb
}

func (s *scheduler) betterLocked(a, b *queuedBatch) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	aw, bw := int64(a.weight), int64(b.weight)
	if aw < 1 {
		aw = 1
	}
	if bw < 1 {
		bw = 1
	}
	aa, ba := s.admitted[a.owner], s.admitted[b.owner]
	if aa*bw != ba*aw {
		return aa*bw < ba*aw
	}
	return a.seq < b.seq
}

func (s *scheduler) queuedItems() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, qb := range s.queue {
		n += len(qb.batch)
	}
	return n
}

// sweepScheduler removes a canceled scope's items from every queued
// batch: its provisional cost releases, its items resolve with the
// cause, and batches emptied by the sweep leave the queue. Other
// scopes' shares of a co-batched entry keep their place.
func (m *Manager) sweepScheduler(sc *Scope, cause error) {
	s := &m.sched
	s.mu.Lock()
	var dropped []pendingItem
	kept := s.queue[:0]
	for _, qb := range s.queue {
		rest := qb.batch[:0:0]
		for _, it := range qb.batch {
			if it.scope == sc {
				dropped = append(dropped, it)
			} else {
				rest = append(rest, it)
			}
		}
		qb.batch = rest
		keptCharges := qb.charged[:0]
		for _, pc := range qb.charged {
			if pc.scope == sc {
				pc.scope.addQueuedCost(-pc.cost)
			} else {
				keptCharges = append(keptCharges, pc)
			}
		}
		qb.charged = keptCharges
		if len(qb.batch) > 0 {
			kept = append(kept, qb)
		}
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	delete(s.admitted, sc)
	s.mu.Unlock()
	for _, it := range dropped {
		it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", it.def.Name, cause)})
	}
}
