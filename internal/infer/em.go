package infer

import (
	"math"
	"sort"

	"repro/internal/relation"
)

// EM defaults and clamps.
const (
	// DefaultPriorAcc is the accuracy assumed of a worker with no
	// evidence (history or priors) at all.
	DefaultPriorAcc = 0.75
	// DefaultPriorWeight is the pseudo-observation weight of that
	// default prior.
	DefaultPriorWeight = 2.0
	// MinAccuracy / MaxAccuracy clamp fitted worker accuracies so a
	// single worker can neither be written off entirely nor become an
	// oracle whose lone vote swamps everyone else's.
	MinAccuracy = 0.05
	MaxAccuracy = 0.99
	// DefaultEMIters bounds the E/M rounds per fit.
	DefaultEMIters = 8
)

// EM jointly estimates per-worker accuracies and per-item answer
// posteriors over the votes of one HIT — Dawid–Skene with a symmetric
// confusion rate. Worker accuracies start from Prior (reputation EWMAs,
// replayed store evidence) and are refined against the items being
// resolved: the E-step computes each item's posterior from the current
// accuracies, the M-step re-estimates each accuracy from how often the
// worker agreed with those posteriors, prior-blended so a worker seen
// twice is not declared perfect or hopeless.
//
// EM is stateless between fits and safe for concurrent use; all
// evidence flows in through Prior and the votes.
type EM struct {
	// Prior returns a worker's prior accuracy and its evidence weight
	// in pseudo-observations. Nil (or a zero weight) uses
	// DefaultPriorAcc / DefaultPriorWeight.
	Prior func(worker string) (acc, weight float64)
	// Iters bounds the E/M rounds (0 = DefaultEMIters).
	Iters int
}

// Name implements Aggregator.
func (e *EM) Name() string { return "em" }

// Posterior is one item's fitted answer.
type Posterior struct {
	// Value is the posterior answer (a Bool for boolean fits).
	Value relation.Value
	// True is the boolean answer (boolean fits only).
	True bool
	// Confidence is the posterior probability of Value, in [0, 1].
	Confidence float64
}

// WorkerAccuracy is one worker's fitted accuracy after a fit.
type WorkerAccuracy struct {
	Worker   string
	Accuracy float64
	// Votes is how many items this worker voted on in the fit.
	Votes int
}

// Bool implements Aggregator on a single item. Ties (posterior exactly
// 0.5) resolve to false, matching Majority.
func (e *EM) Bool(votes []Vote) (bool, float64) {
	ps, _ := e.Fit([][]Vote{votes}, true)
	return ps[0].True, ps[0].Confidence
}

// Value implements Aggregator on a single item. Ties resolve to the
// smallest canonical encoding, matching Majority.
func (e *EM) Value(votes []Vote) (relation.Value, float64) {
	ps, _ := e.Fit([][]Vote{votes}, false)
	return ps[0].Value, ps[0].Confidence
}

func (e *EM) prior(worker string) (float64, float64) {
	if e.Prior != nil {
		if acc, w := e.Prior(worker); w > 0 {
			return clampAcc(acc), w
		}
	}
	return DefaultPriorAcc, DefaultPriorWeight
}

func clampAcc(a float64) float64 {
	return math.Min(MaxAccuracy, math.Max(MinAccuracy, a))
}

// emWorker is one worker's accuracy state during a fit.
type emWorker struct {
	priorAcc, priorW float64
	acc              float64
	votes            int
}

// Fit jointly fits worker accuracies and per-item posteriors over one
// HIT's votes. boolean selects the two-class model (log-odds over
// true/false); otherwise the categorical model, which spreads each
// worker's error mass uniformly over the alternatives plus one
// open-world pseudo-candidate (so a single vote is not certainty).
//
// Items resolve in input order and workers in sorted-ID order, so the
// fit is deterministic. Tie-breaks match Majority exactly: a boolean
// posterior of exactly 0.5 answers false, and categorical posterior
// ties answer the smallest canonical encoding.
func (e *EM) Fit(items [][]Vote, boolean bool) ([]Posterior, []WorkerAccuracy) {
	iters := e.Iters
	if iters <= 0 {
		iters = DefaultEMIters
	}
	// Collect workers in sorted order.
	workers := make(map[string]*emWorker)
	for _, votes := range items {
		for _, v := range votes {
			w := workers[v.Worker]
			if w == nil {
				acc, pw := e.prior(v.Worker)
				w = &emWorker{priorAcc: acc, priorW: pw, acc: acc}
				workers[v.Worker] = w
			}
			w.votes++
		}
	}
	ids := make([]string, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	out := make([]Posterior, len(items))
	pTrue := make([]float64, len(items))            // boolean model: P(true) per item
	dists := make([]map[string]float64, len(items)) // categorical: posterior per voted value
	for iter := 0; iter < iters; iter++ {
		// E-step: posterior per item from current accuracies.
		for j, votes := range items {
			if boolean {
				out[j], pTrue[j] = e.boolPosterior(votes, workers)
			} else {
				out[j], dists[j] = e.valuePosterior(votes, workers)
			}
		}
		// M-step: each worker's accuracy is the posterior probability
		// mass on the answers they voted for (not winner-agreement —
		// with split categorical mass that would credit dissent),
		// blended with the prior's pseudo-observations.
		for _, id := range ids {
			w := workers[id]
			correct := w.priorAcc * w.priorW
			total := w.priorW
			for j, votes := range items {
				for _, v := range votes {
					if v.Worker != id {
						continue
					}
					total++
					if boolean {
						if v.Value.Truthy() {
							correct += pTrue[j]
						} else {
							correct += 1 - pTrue[j]
						}
					} else {
						correct += dists[j][v.Value.EncodeKey()]
					}
				}
			}
			w.acc = clampAcc(correct / total)
		}
	}
	accs := make([]WorkerAccuracy, 0, len(ids))
	for _, id := range ids {
		w := workers[id]
		accs = append(accs, WorkerAccuracy{Worker: id, Accuracy: w.acc, Votes: w.votes})
	}
	return out, accs
}

// boolPosterior computes P(true) by accumulating each vote's accuracy
// log-odds, returning the posterior and P(true) itself. Empty votes
// answer (false, 0), like stats.MajorityBool.
func (e *EM) boolPosterior(votes []Vote, workers map[string]*emWorker) (Posterior, float64) {
	if len(votes) == 0 {
		return Posterior{Value: relation.NewBool(false)}, 0
	}
	logOdds := 0.0
	for _, v := range votes {
		a := workers[v.Worker].acc
		l := math.Log(a / (1 - a))
		if v.Value.Truthy() {
			logOdds += l
		} else {
			logOdds -= l
		}
	}
	p := 1 / (1 + math.Exp(-logOdds))
	val := p > 0.5 // exactly 0.5 ties to false, like MajorityBool
	conf := p
	if !val {
		conf = 1 - p
	}
	return Posterior{Value: relation.NewBool(val), True: val, Confidence: conf}, p
}

// valuePosterior computes a categorical posterior over the distinct
// voted values plus one open-world pseudo-candidate: each vote
// multiplies its candidate by the worker's accuracy and every other
// candidate by the spread error mass (1-acc)/(K-1). The second return
// is the normalized posterior of each voted value, keyed by encoding.
func (e *EM) valuePosterior(votes []Vote, workers map[string]*emWorker) (Posterior, map[string]float64) {
	if len(votes) == 0 {
		return Posterior{Value: relation.Null}, nil
	}
	rep := make(map[string]relation.Value, len(votes))
	keys := make([]string, 0, len(votes))
	for _, v := range votes {
		k := v.Value.EncodeKey()
		if _, seen := rep[k]; !seen {
			rep[k] = v.Value
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	k := float64(len(keys) + 1) // +1: the answer nobody voted for
	// Work in log space for numeric stability on long vote lists.
	logw := make([]float64, len(keys))
	var logOther float64
	for _, v := range votes {
		a := workers[v.Worker].acc
		miss := math.Log((1 - a) / (k - 1))
		hit := math.Log(a)
		vk := v.Value.EncodeKey()
		for i, key := range keys {
			if key == vk {
				logw[i] += hit
			} else {
				logw[i] += miss
			}
		}
		logOther += miss
	}
	maxLog := logOther
	for _, lw := range logw {
		if lw > maxLog {
			maxLog = lw
		}
	}
	total := math.Exp(logOther - maxLog)
	best, bestP := 0, -1.0
	ps := make([]float64, len(keys))
	for i, lw := range logw {
		ps[i] = math.Exp(lw - maxLog)
		total += ps[i]
		if ps[i] > bestP { // strict: equal posteriors keep the smaller key
			best, bestP = i, ps[i]
		}
	}
	dist := make(map[string]float64, len(keys))
	for i, key := range keys {
		dist[key] = ps[i] / total
	}
	return Posterior{Value: rep[keys[best]], Confidence: bestP / total}, dist
}
