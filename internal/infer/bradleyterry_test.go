package infer

import "testing"

func rankOf(order []string) map[string]int {
	r := make(map[string]int, len(order))
	for i, k := range order {
		r[k] = i
	}
	return r
}

func TestConsensusRecoversPlantedOrder(t *testing.T) {
	keys := []string{"c", "a", "d", "b", "e"}
	planted := []string{"a", "b", "c", "d", "e"}
	orderings := []Ordering{
		{Worker: "w1", Rank: rankOf(planted)},
		{Worker: "w2", Rank: rankOf(planted)},
		// w3 swaps one adjacent pair; the majority should still win.
		{Worker: "w3", Rank: rankOf([]string{"a", "b", "d", "c", "e"})},
	}
	var bt BradleyTerry
	got := bt.Consensus(keys, orderings)
	for i, k := range planted {
		if got[i] != k {
			t.Fatalf("consensus = %v, want %v", got, planted)
		}
	}
}

func TestConsensusDeterministicOnNoVotes(t *testing.T) {
	keys := []string{"x", "y", "z"}
	var bt BradleyTerry
	got := bt.Consensus(keys, nil)
	// No comparisons: all strengths stay 1, ties break by input order.
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("no-vote consensus = %v, want input order %v", got, keys)
		}
	}
	if bt.Consensus(nil, nil) != nil {
		t.Fatal("empty keys should return nil")
	}
}

func TestStrengthsOrdering(t *testing.T) {
	// Round-robin: 0 beats everyone twice, 2 loses to everyone twice,
	// 1 splits. Strengths must come out strictly ordered.
	wins := map[[2]int]float64{
		{0, 1}: 2, {0, 2}: 2,
		{1, 2}: 2,
	}
	var bt BradleyTerry
	s := bt.Strengths(3, func(i, j int) float64 { return wins[[2]int{i, j}] })
	if !(s[0] > s[1] && s[1] > s[2]) {
		t.Fatalf("strengths not ordered: %v", s)
	}
}

func TestPairAgreementSeparatesJunkFromHonest(t *testing.T) {
	consensus := []string{"a", "b", "c", "d", "e"}
	honest := Ordering{Worker: "h", Rank: rankOf(consensus)}
	junk := Ordering{Worker: "j", Rank: rankOf([]string{"e", "d", "c", "b", "a"})}

	agreed, total := PairAgreement(consensus, honest)
	if total != 10 || agreed != 10 {
		t.Fatalf("honest worker: %d/%d, want 10/10", agreed, total)
	}
	agreed, total = PairAgreement(consensus, junk)
	if total != 10 || agreed != 0 {
		t.Fatalf("reversed worker: %d/%d, want 0/10", agreed, total)
	}

	// Partial rankings only count pairs present on both sides.
	partial := Ordering{Worker: "p", Rank: map[string]int{"a": 0, "c": 1}}
	agreed, total = PairAgreement(consensus, partial)
	if total != 1 || agreed != 1 {
		t.Fatalf("partial ranking: %d/%d, want 1/1", agreed, total)
	}
}
