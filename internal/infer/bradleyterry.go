package infer

import "sort"

// Ordering is one worker's submitted permutation of a comparison
// group: Rank maps item key to position (lower = earlier).
type Ordering struct {
	Worker string
	Rank   map[string]int
}

// BradleyTerry fits pairwise item strengths from win counts by the MM
// (minorization–maximization) algorithm: the maximum-likelihood model
// where item i beats item j with probability s_i/(s_i+s_j). Order
// responses already arrive as pairwise win matrices (internal/rank
// folds votes that way), so the fit extends answer inference — and
// per-worker quality scoring — to ranking tasks.
type BradleyTerry struct {
	// Iters bounds the MM rounds (0 = 30).
	Iters int
	// Smooth is the virtual win added in both directions of every
	// compared pair, keeping strengths finite when an item sweeps or
	// is swept (0 = 0.1).
	Smooth float64
}

func (bt BradleyTerry) iters() int {
	if bt.Iters <= 0 {
		return 30
	}
	return bt.Iters
}

func (bt BradleyTerry) smooth() float64 {
	if bt.Smooth <= 0 {
		return 0.1
	}
	return bt.Smooth
}

// Strengths fits strengths for n items from wins(i, j) = how many
// rankings placed i before j. Pairs with no comparisons either way are
// ignored. Strengths are normalized to mean 1; ties in downstream
// ordering must break by input order for determinism.
func (bt BradleyTerry) Strengths(n int, wins func(i, j int) float64) []float64 {
	s := make([]float64, n)
	w := make([]float64, n)      // total (smoothed) wins per item
	pair := make([]float64, n*n) // smoothed wins[i][j]
	eps := bt.smooth()
	for i := 0; i < n; i++ {
		s[i] = 1
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if wins(i, j) > 0 || wins(j, i) > 0 {
				pair[i*n+j] = wins(i, j) + eps
				w[i] += pair[i*n+j]
			}
		}
	}
	for iter := 0; iter < bt.iters(); iter++ {
		next := make([]float64, n)
		var sum float64
		for i := 0; i < n; i++ {
			denom := 0.0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				nij := pair[i*n+j] + pair[j*n+i]
				if nij > 0 {
					denom += nij / (s[i] + s[j])
				}
			}
			if denom == 0 || w[i] == 0 {
				next[i] = s[i]
			} else {
				next[i] = w[i] / denom
			}
			sum += next[i]
		}
		if sum == 0 {
			break
		}
		// Normalize to mean 1 so the iteration cannot drift to 0/∞.
		scale := float64(n) / sum
		for i := range next {
			next[i] *= scale
		}
		s = next
	}
	return s
}

// Consensus fits strengths over the orderings' pairwise wins and
// returns keys strongest-first (the maximum-likelihood order). Ties
// break by input order, matching internal/rank's convention.
func (bt BradleyTerry) Consensus(keys []string, orderings []Ordering) []string {
	n := len(keys)
	if n == 0 {
		return nil
	}
	wins := make([]float64, n*n)
	for _, o := range orderings {
		for i := 0; i < n; i++ {
			ri, ok := o.Rank[keys[i]]
			if !ok {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				rj, ok := o.Rank[keys[j]]
				if ok && ri < rj {
					wins[i*n+j]++
				}
			}
		}
	}
	s := bt.Strengths(n, func(i, j int) float64 { return wins[i*n+j] })
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	out := make([]string, n)
	for pos, i := range idx {
		out[pos] = keys[i]
	}
	return out
}

// PairAgreement counts how many of the consensus order's pairs an
// ordering agrees with. A worker submitting uniform-junk permutations
// agrees on about half; an honest worker on nearly all — the signal
// reputation tracking uses for Order responses. Pairs the ordering did
// not rank on both sides are skipped; tied positions count as
// disagreement (a permutation has no ties).
func PairAgreement(consensus []string, o Ordering) (agreed, total int) {
	for i := 0; i < len(consensus); i++ {
		ri, ok := o.Rank[consensus[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(consensus); j++ {
			rj, ok := o.Rank[consensus[j]]
			if !ok {
				continue
			}
			total++
			if ri < rj {
				agreed++
			}
		}
	}
	return agreed, total
}
