package infer

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

func boolVotes(vals ...bool) []Vote {
	votes := make([]Vote, len(vals))
	for i, v := range vals {
		votes[i] = Vote{Worker: string(rune('a' + i)), Value: relation.NewBool(v)}
	}
	return votes
}

func TestMajorityMatchesStats(t *testing.T) {
	cases := [][]bool{
		{true, true, false},
		{false, false, true},
		{true},
		{false},
		{true, false}, // tie
		{},
	}
	var m Majority
	for _, c := range cases {
		votes := boolVotes(c...)
		got, gotConf := m.Bool(votes)
		want, wantConf := stats.MajorityBool(values(votes))
		if got != want || gotConf != wantConf {
			t.Errorf("Majority.Bool(%v) = (%v, %v), stats.MajorityBool = (%v, %v)",
				c, got, gotConf, want, wantConf)
		}
	}
}

// Equal-vote outcomes must resolve by the stable documented rules —
// boolean ties to false, categorical ties to the smallest canonical
// encoding — in both aggregators, so switching aggregation never
// changes a tie across reruns.
func TestTieBreaksAgreeAcrossAggregators(t *testing.T) {
	em := &EM{}
	var m Majority

	tie := boolVotes(true, false)
	if got, _ := m.Bool(tie); got {
		t.Fatal("Majority boolean tie should resolve to false")
	}
	if got, _ := em.Bool(tie); got {
		t.Fatal("EM boolean tie should resolve to false")
	}

	vals := []Vote{
		{Worker: "a", Value: relation.NewString("zebra")},
		{Worker: "b", Value: relation.NewString("apple")},
	}
	mv, _ := m.Value(vals)
	ev, _ := em.Value(vals)
	if mv.Str() != "apple" || ev.Str() != "apple" {
		t.Fatalf("categorical tie should resolve to smallest encoding: majority=%v em=%v", mv, ev)
	}
}

func TestEMUnanimousPairIsConfident(t *testing.T) {
	em := &EM{}
	val, conf := em.Bool(boolVotes(true, true))
	if !val {
		t.Fatal("two true votes should answer true")
	}
	if conf < 0.9 {
		t.Fatalf("two agreeing votes should be confident, got %v", conf)
	}
	_, splitConf := em.Bool(boolVotes(true, false))
	if splitConf > 0.6 {
		t.Fatalf("a 1-1 split should not be confident, got %v", splitConf)
	}
}

// One reliable worker (strong prior) should outvote two workers the
// priors call spammers — joint inference weighs votes by estimated
// accuracy instead of counting heads.
func TestEMPriorsOutvoteHeadcount(t *testing.T) {
	em := &EM{Prior: func(w string) (float64, float64) {
		if w == "good" {
			return 0.98, 50
		}
		return 0.5, 50 // coin-flippers
	}}
	votes := []Vote{
		{Worker: "good", Value: relation.NewBool(true)},
		{Worker: "spam1", Value: relation.NewBool(false)},
		{Worker: "spam2", Value: relation.NewBool(false)},
	}
	val, conf := em.Bool(votes)
	if !val {
		t.Fatalf("reliable worker should outvote two coin-flippers (conf %v)", conf)
	}
}

// The joint fit must discover a bad worker from the votes alone: across
// enough items, the worker who always disagrees with the (correct)
// majority ends with a low fitted accuracy and the posteriors follow
// the majority.
func TestEMFitDiscoversBadWorker(t *testing.T) {
	em := &EM{}
	items := make([][]Vote, 12)
	for j := range items {
		truth := j%2 == 0
		items[j] = []Vote{
			{Worker: "w1", Value: relation.NewBool(truth)},
			{Worker: "w2", Value: relation.NewBool(truth)},
			{Worker: "bad", Value: relation.NewBool(!truth)},
		}
	}
	ps, accs := em.Fit(items, true)
	for j, p := range ps {
		if p.True != (j%2 == 0) {
			t.Fatalf("item %d resolved against the reliable majority", j)
		}
		if p.Confidence < 0.9 {
			t.Fatalf("item %d confidence %v too low after joint fit", j, p.Confidence)
		}
	}
	byID := map[string]WorkerAccuracy{}
	for _, a := range accs {
		byID[a.Worker] = a
	}
	if byID["bad"].Accuracy >= 0.5 {
		t.Fatalf("bad worker fitted accuracy %v, want < 0.5", byID["bad"].Accuracy)
	}
	if byID["w1"].Accuracy <= 0.8 {
		t.Fatalf("good worker fitted accuracy %v, want > 0.8", byID["w1"].Accuracy)
	}
	if byID["bad"].Votes != 12 {
		t.Fatalf("bad worker vote count %d, want 12", byID["bad"].Votes)
	}
}

func TestEMDeterministic(t *testing.T) {
	em := &EM{}
	items := [][]Vote{
		boolVotes(true, false, true),
		boolVotes(false, false, true),
		boolVotes(true, true),
	}
	p1, a1 := em.Fit(items, true)
	p2, a2 := em.Fit(items, true)
	for j := range p1 {
		if p1[j].Value.EncodeKey() != p2[j].Value.EncodeKey() ||
			p1[j].True != p2[j].True || p1[j].Confidence != p2[j].Confidence {
			t.Fatalf("item %d posterior drifted across identical fits: %+v vs %+v", j, p1[j], p2[j])
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("worker accuracy drifted across identical fits: %+v vs %+v", a1[i], a2[i])
		}
	}
}

func TestEMCategoricalSingleVoteNotCertain(t *testing.T) {
	em := &EM{}
	_, conf := em.Value([]Vote{{Worker: "a", Value: relation.NewString("x")}})
	if conf >= 0.95 {
		t.Fatalf("one categorical vote should not be near-certain, got %v", conf)
	}
	v, conf2 := em.Value([]Vote{
		{Worker: "a", Value: relation.NewString("x")},
		{Worker: "b", Value: relation.NewString("x")},
	})
	if v.Str() != "x" || conf2 <= conf {
		t.Fatalf("agreement should raise confidence: %v then %v", conf, conf2)
	}
}

func TestEMEmptyVotes(t *testing.T) {
	em := &EM{}
	if val, conf := em.Bool(nil); val || conf != 0 {
		t.Fatalf("empty boolean votes = (%v, %v), want (false, 0)", val, conf)
	}
	if v, conf := em.Value(nil); !v.IsNull() || conf != 0 {
		t.Fatalf("empty categorical votes = (%v, %v), want (Null, 0)", v, conf)
	}
}

func TestClampAcc(t *testing.T) {
	if got := clampAcc(1.5); got != MaxAccuracy {
		t.Fatalf("clampAcc(1.5) = %v", got)
	}
	if got := clampAcc(-3); got != MinAccuracy {
		t.Fatalf("clampAcc(-3) = %v", got)
	}
	if got := clampAcc(0.7); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("clampAcc(0.7) = %v", got)
	}
}
