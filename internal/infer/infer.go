package infer

import (
	"repro/internal/relation"
	"repro/internal/stats"
)

// Vote is one worker's answer to one item.
type Vote struct {
	Worker string
	Value  relation.Value
}

// Aggregator resolves a set of redundant votes on one item into a
// posterior answer and a confidence in [0, 1]. Implementations must be
// deterministic: identical votes (in identical order) produce identical
// results, and ties resolve by the same stable rules Majority uses —
// boolean ties to false, categorical ties to the smallest canonical
// encoding — so switching aggregators never changes tie outcomes.
type Aggregator interface {
	// Name identifies the aggregator ("majority", "em").
	Name() string
	// Bool resolves boolean votes.
	Bool(votes []Vote) (value bool, confidence float64)
	// Value resolves categorical votes.
	Value(votes []Vote) (relation.Value, float64)
}

// Majority is majority vote — the engine's historical aggregation,
// relocated behind the Aggregator seam. It delegates to
// stats.MajorityBool / stats.MajorityValue, so its answers (including
// tie-breaks) are byte-identical to the seed's.
type Majority struct{}

// Name implements Aggregator.
func (Majority) Name() string { return "majority" }

// Bool implements Aggregator by simple majority; ties break to false
// (a filter keeps a tuple only on a strict majority).
func (Majority) Bool(votes []Vote) (bool, float64) {
	return stats.MajorityBool(values(votes))
}

// Value implements Aggregator by modal answer; ties break to the
// smallest canonical encoding.
func (Majority) Value(votes []Vote) (relation.Value, float64) {
	return stats.MajorityValue(values(votes))
}

func values(votes []Vote) []relation.Value {
	vals := make([]relation.Value, len(votes))
	for i, v := range votes {
		vals[i] = v.Value
	}
	return vals
}
