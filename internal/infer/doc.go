// Package infer is Qurk's answer-inference layer: it turns the
// redundant per-assignment responses a HIT buys into a posterior answer
// with an explicit confidence, so the task manager can decide how much
// redundancy each question actually needs.
//
// Three aggregators implement the Aggregator seam:
//
//   - Majority is the seed behavior relocated: simple majority vote,
//     delegating to stats.MajorityBool / stats.MajorityValue so ties
//     resolve by exactly the documented deterministic rules (boolean
//     ties to false, categorical ties to the smallest canonical
//     encoding). It is the default — engines that never opt into
//     inference produce byte-identical results to the seed.
//
//   - EM jointly estimates per-worker accuracies and per-item answer
//     posteriors (Dawid–Skene with a symmetric confusion rate) over the
//     votes of one HIT, seeded from per-worker priors the task manager
//     derives from its reputation EWMAs and replayed store evidence. A
//     confident posterior at two agreeing assignments is what lets the
//     adaptive redundancy loop stop a HIT below its assignment cap.
//
//   - BradleyTerry fits pairwise strengths over the win matrices Order
//     responses produce, yielding a consensus order and a per-worker
//     pairwise agreement score — extending worker-quality accounting
//     (and spammer detection) to ranking tasks, whose uniform-junk
//     permutations the vote-based reputation path cannot see.
//
// All entry points are deterministic: workers iterate in sorted order,
// items in input order, and every tie-break is a stable rule, so two
// runs over the same votes produce identical posteriors.
package infer
