package model

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func strArgs(ss ...string) []relation.Value {
	out := make([]relation.Value, len(ss))
	for i, s := range ss {
		out[i] = relation.NewString(s)
	}
	return out
}

func TestExtractFeatures(t *testing.T) {
	f := Extract([]relation.Value{relation.NewString("Big Cat"), relation.NewInt(5)})
	if f["a0:big"] != 1 || f["a0:cat"] != 1 {
		t.Errorf("tokens missing: %v", f)
	}
	found := false
	for k := range f {
		if len(k) > 3 && k[:3] == "a1:" {
			found = true
		}
	}
	if !found {
		t.Errorf("numeric bucket missing: %v", f)
	}
	// Position matters.
	f2 := Extract([]relation.Value{relation.NewInt(5), relation.NewString("Big Cat")})
	if f2["a0:big"] == 1 {
		t.Error("positional prefix lost")
	}
}

func TestExtractNestedKinds(t *testing.T) {
	f := Extract([]relation.Value{
		relation.NewBool(true),
		relation.NewList(relation.NewString("x1"), relation.NewString("y2")),
		relation.NewTuple(relation.Field{Name: "Phone", Value: relation.NewString("555")}),
		relation.NewFloat(-10),
	})
	if f["a0:true"] != 1 {
		t.Errorf("bool feature missing: %v", f)
	}
	if f["a1:x1"] != 1 || f["a1:y2"] != 1 {
		t.Errorf("list features missing: %v", f)
	}
	if f["a2:phone.555"] != 1 {
		t.Errorf("tuple features missing: %v", f)
	}
}

func TestTokenizeNGrams(t *testing.T) {
	toks := tokenize("catimg-0042.png")
	want := map[string]bool{"catimg": true, "g:cat": true, "g:ati": true, "0042": true, "png": true}
	got := map[string]bool{}
	for _, tk := range toks {
		got[tk] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("token %q missing from %v", w, toks)
		}
	}
}

// trainOn feeds n labelled cat/dog examples to a classifier.
func trainOn(clf Classifier, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			clf.Train(Extract(strArgs(fmt.Sprintf("cat-photo-%04d.png", i))), true)
		} else {
			clf.Train(Extract(strArgs(fmt.Sprintf("dog-photo-%04d.png", i))), false)
		}
	}
}

func testLearnsSeparable(t *testing.T, clf Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	trainOn(clf, 200, rng)
	correct := 0
	for i := 0; i < 100; i++ {
		img := fmt.Sprintf("cat-photo-%04d.png", 1000+i)
		want := true
		if i%2 == 0 {
			img = fmt.Sprintf("dog-photo-%04d.png", 1000+i)
			want = false
		}
		got, conf := clf.Predict(Extract(strArgs(img)))
		if got == want {
			correct++
		}
		if conf < 0.5 || conf > 1 {
			t.Fatalf("confidence %v out of range", conf)
		}
	}
	if correct < 90 {
		t.Fatalf("separable task: only %d/100 correct", correct)
	}
}

func TestNaiveBayesLearns(t *testing.T) { testLearnsSeparable(t, NewNaiveBayes()) }
func TestPerceptronLearns(t *testing.T) { testLearnsSeparable(t, NewPerceptron()) }

func TestUntrainedPredicts50(t *testing.T) {
	for _, clf := range []Classifier{NewNaiveBayes(), NewPerceptron()} {
		_, conf := clf.Predict(Extract(strArgs("x")))
		if conf != 0.5 {
			t.Errorf("%T untrained confidence = %v", clf, conf)
		}
		if clf.Examples() != 0 {
			t.Errorf("%T examples = %d", clf, clf.Examples())
		}
	}
}

func TestTaskModelGateMinExamples(t *testing.T) {
	m := NewTaskModel("isCat", NewNaiveBayes(), 10, 0.6)
	for i := 0; i < 9; i++ {
		m.Train(strArgs("cat"), true)
	}
	if _, _, ok := m.TryAnswer(strArgs("cat")); ok {
		t.Fatal("model answered before MinExamples")
	}
	m.Train(strArgs("cat"), true)
	if _, _, ok := m.TryAnswer(strArgs("cat")); !ok {
		t.Fatal("model should answer after MinExamples on confident input")
	}
	s := m.Stats()
	if s.Automated != 1 || s.Declined != 1 || s.Examples != 10 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTaskModelGateConfidence(t *testing.T) {
	m := NewTaskModel("isCat", NewNaiveBayes(), 1, 0.999999)
	rng := rand.New(rand.NewSource(1))
	trainOn(m.clf, 50, rng)
	// An input with tokens from both classes is low-confidence.
	if _, conf, ok := m.TryAnswer(strArgs("cat-dog-photo")); ok {
		t.Fatalf("ambiguous input answered with conf %v", conf)
	}
}

func TestTaskModelAnswersBoolean(t *testing.T) {
	m := NewTaskModel("isCat", NewNaiveBayes(), 1, 0.51)
	for i := 0; i < 30; i++ {
		m.Train(strArgs("cat"), true)
		m.Train(strArgs("dog"), false)
	}
	v, conf, ok := m.TryAnswer(strArgs("cat"))
	if !ok || !v.Bool() || conf < 0.51 {
		t.Fatalf("= %v %v %v", v, conf, ok)
	}
	v2, _, ok2 := m.TryAnswer(strArgs("dog"))
	if !ok2 || v2.Bool() {
		t.Fatalf("dog = %v ok=%v", v2, ok2)
	}
}

func TestTaskModelDefaults(t *testing.T) {
	m := NewTaskModel("t", NewNaiveBayes(), 0, 0)
	if m.MinExamples != 20 || m.MinConfidence != 0.9 {
		t.Fatalf("defaults = %d %v", m.MinExamples, m.MinConfidence)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.For("isCat"); ok {
		t.Fatal("empty registry hit")
	}
	m := NewTaskModel("isCat", NewNaiveBayes(), 5, 0.8)
	r.Attach(m)
	got, ok := r.For("ISCAT")
	if !ok || got != m {
		t.Fatal("case-insensitive lookup failed")
	}
	r.Attach(NewTaskModel("samePerson", NewPerceptron(), 5, 0.8))
	all := r.All()
	if len(all) != 2 || all[0].Task != "isCat" {
		t.Fatalf("all = %v", all)
	}
}

func TestPerceptronConvergesOnRepeats(t *testing.T) {
	p := NewPerceptron()
	for i := 0; i < 100; i++ {
		p.Train(Extract(strArgs("yes")), true)
		p.Train(Extract(strArgs("no")), false)
	}
	if got, _ := p.Predict(Extract(strArgs("yes"))); !got {
		t.Fatal("perceptron failed on training point")
	}
	if got, _ := p.Predict(Extract(strArgs("no"))); got {
		t.Fatal("perceptron failed on training point")
	}
}

func TestNaiveBayesSkewedPrior(t *testing.T) {
	nb := NewNaiveBayes()
	for i := 0; i < 100; i++ {
		nb.Train(Extract(strArgs(fmt.Sprintf("thing%d", i))), false)
	}
	nb.Train(Extract(strArgs("rare")), true)
	// With no features at all, only the class prior speaks: the heavily
	// negative class must win.
	got, conf := nb.Predict(Features{})
	if got {
		t.Fatal("prior ignored")
	}
	if conf <= 0.5 {
		t.Fatalf("prior confidence = %v", conf)
	}
}
