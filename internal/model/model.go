// Package model implements Qurk's Task Model: if the engine is aware of
// a learning model for a task, it trains the model with HIT results "with
// the hope of eventually reducing monetary costs through automation"
// (paper §2). Models are confidence-gated: predictions below the gate
// fall back to humans, bounding accuracy loss.
package model

import (
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
)

// Features is a sparse binary feature vector.
type Features map[string]float64

// Extract converts task argument values into features: lower-cased
// word/character tokens per argument position plus bucketed numerics.
// It is deterministic and cheap; no floats enter the cache keys.
func Extract(args []relation.Value) Features {
	f := make(Features)
	for i, a := range args {
		prefix := "a" + string(rune('0'+i%10)) + ":"
		extractInto(f, prefix, a)
	}
	return f
}

func extractInto(f Features, prefix string, v relation.Value) {
	switch v.Kind() {
	case relation.KindString, relation.KindImage:
		for _, tok := range tokenize(v.Str()) {
			f[prefix+tok] = 1
		}
	case relation.KindInt, relation.KindFloat:
		// Log-scale bucket keeps the vocabulary small.
		x := v.Float()
		bucket := 0
		if x > 0 {
			bucket = int(math.Log2(x + 1))
		} else if x < 0 {
			bucket = -int(math.Log2(-x + 1))
		}
		f[prefix+"num:"+itoa(bucket)] = 1
	case relation.KindBool:
		if v.Bool() {
			f[prefix+"true"] = 1
		} else {
			f[prefix+"false"] = 1
		}
	case relation.KindList:
		for _, e := range v.List() {
			extractInto(f, prefix, e)
		}
	case relation.KindTuple:
		for _, fl := range v.Fields() {
			extractInto(f, prefix+strings.ToLower(fl.Name)+".", fl.Value)
		}
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	neg := x < 0
	if neg {
		x = -x
	}
	var b [8]byte
	i := len(b)
	for x > 0 {
		i--
		b[i] = byte('0' + x%10)
		x /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// tokenize splits on non-alphanumerics and lower-cases; short strings
// also emit 3-grams so opaque identifiers (image refs) stay learnable.
func tokenize(s string) []string {
	s = strings.ToLower(s)
	var toks []string
	start := -1
	for i := 0; i <= len(s); i++ {
		alnum := i < len(s) && (s[i] >= 'a' && s[i] <= 'z' || s[i] >= '0' && s[i] <= '9')
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			toks = append(toks, s[start:i])
			start = -1
		}
	}
	var out []string
	for _, t := range toks {
		out = append(out, t)
		if len(t) > 3 {
			for i := 0; i+3 <= len(t); i++ {
				out = append(out, "g:"+t[i:i+3])
			}
		}
	}
	return out
}

// NaiveBayes is a binary bag-of-features classifier with Laplace
// smoothing.
type NaiveBayes struct {
	mu        sync.Mutex
	classDocs [2]float64
	featCount [2]map[string]float64
	featTotal [2]float64
	vocab     map[string]bool
}

// NewNaiveBayes returns an untrained classifier.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		featCount: [2]map[string]float64{make(map[string]float64), make(map[string]float64)},
		vocab:     make(map[string]bool),
	}
}

func classIndex(label bool) int {
	if label {
		return 1
	}
	return 0
}

// Train folds in one labelled example.
func (nb *NaiveBayes) Train(f Features, label bool) {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	c := classIndex(label)
	nb.classDocs[c]++
	for feat, w := range f {
		nb.featCount[c][feat] += w
		nb.featTotal[c] += w
		nb.vocab[feat] = true
	}
}

// Examples returns the number of training examples seen.
func (nb *NaiveBayes) Examples() int {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	return int(nb.classDocs[0] + nb.classDocs[1])
}

// Predict returns the MAP label and its posterior probability.
func (nb *NaiveBayes) Predict(f Features) (label bool, confidence float64) {
	nb.mu.Lock()
	defer nb.mu.Unlock()
	total := nb.classDocs[0] + nb.classDocs[1]
	if total == 0 {
		return false, 0.5
	}
	v := float64(len(nb.vocab)) + 1
	var logp [2]float64
	for c := 0; c < 2; c++ {
		logp[c] = math.Log((nb.classDocs[c] + 1) / (total + 2))
		for feat, w := range f {
			p := (nb.featCount[c][feat] + 1) / (nb.featTotal[c] + v)
			logp[c] += w * math.Log(p)
		}
	}
	// Softmax over the two log-probabilities.
	m := math.Max(logp[0], logp[1])
	p0 := math.Exp(logp[0] - m)
	p1 := math.Exp(logp[1] - m)
	pTrue := p1 / (p0 + p1)
	if pTrue >= 0.5 {
		return true, pTrue
	}
	return false, 1 - pTrue
}

// Perceptron is an averaged binary perceptron, the second learner the
// engine can attach to a task.
type Perceptron struct {
	mu      sync.Mutex
	weights map[string]float64
	sums    map[string]float64 // for averaging
	bias    float64
	biasSum float64
	steps   float64
	n       int
}

// NewPerceptron returns an untrained perceptron.
func NewPerceptron() *Perceptron {
	return &Perceptron{weights: make(map[string]float64), sums: make(map[string]float64)}
}

// Train folds in one labelled example (single online pass).
func (p *Perceptron) Train(f Features, label bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.steps++
	p.n++
	y := -1.0
	if label {
		y = 1.0
	}
	score := p.bias
	for feat, w := range f {
		score += p.weights[feat] * w
	}
	if y*score <= 0 {
		for feat, w := range f {
			p.weights[feat] += y * w
			p.sums[feat] += y * w * p.steps
		}
		p.bias += y
		p.biasSum += y * p.steps
	}
}

// Examples returns the number of training examples seen.
func (p *Perceptron) Examples() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Predict returns the averaged-weights label and a margin-based
// pseudo-confidence in [0.5, 1).
func (p *Perceptron) Predict(f Features) (label bool, confidence float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.steps == 0 {
		return false, 0.5
	}
	score := p.bias - p.biasSum/p.steps
	norm := 1.0
	for feat, w := range f {
		avg := p.weights[feat] - p.sums[feat]/p.steps
		score += avg * w
		norm += w * w
	}
	margin := score / math.Sqrt(norm)
	conf := 1 / (1 + math.Exp(-math.Abs(margin))) // in [0.5, 1)
	return score >= 0, conf
}

// Classifier is the learner interface a TaskModel gates.
type Classifier interface {
	Train(f Features, label bool)
	Predict(f Features) (label bool, confidence float64)
	Examples() int
}

// TaskModel pairs a classifier with its confidence gate for one task.
type TaskModel struct {
	Task string
	// MinExamples before any prediction is offered (default 20).
	MinExamples int
	// MinConfidence to answer instead of a human (default 0.9).
	MinConfidence float64

	clf Classifier

	mu        sync.Mutex
	automated int64
	declined  int64
}

// NewTaskModel gates clf for the named task; zero thresholds take the
// documented defaults.
func NewTaskModel(task string, clf Classifier, minExamples int, minConfidence float64) *TaskModel {
	if minExamples <= 0 {
		minExamples = 20
	}
	if minConfidence <= 0 {
		minConfidence = 0.9
	}
	return &TaskModel{Task: task, MinExamples: minExamples, MinConfidence: minConfidence, clf: clf}
}

// Train records a human-produced label for args.
func (m *TaskModel) Train(args []relation.Value, label bool) {
	m.clf.Train(Extract(args), label)
}

// TryAnswer predicts when the gate passes; ok=false sends the task to a
// human instead.
func (m *TaskModel) TryAnswer(args []relation.Value) (answer relation.Value, confidence float64, ok bool) {
	if m.clf.Examples() < m.MinExamples {
		m.note(false)
		return relation.Null, 0, false
	}
	label, conf := m.clf.Predict(Extract(args))
	if conf < m.MinConfidence {
		m.note(false)
		return relation.Null, conf, false
	}
	m.note(true)
	return relation.NewBool(label), conf, true
}

func (m *TaskModel) note(automated bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if automated {
		m.automated++
	} else {
		m.declined++
	}
}

// Stats reports how often the model substituted for humans.
type Stats struct {
	Task      string
	Examples  int
	Automated int64
	Declined  int64
}

// Stats returns substitution counters.
func (m *TaskModel) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Task: m.Task, Examples: m.clf.Examples(), Automated: m.automated, Declined: m.declined}
}

// Example is one labelled training instance, the unit the durable
// knowledge store persists for task models: replaying examples through
// Train rebuilds any classifier, whereas raw weights would tie the store
// to one learner's internals.
type Example struct {
	Args  []relation.Value
	Label bool
}

// Registry holds the models the engine knows about, per task.
type Registry struct {
	mu     sync.Mutex
	models map[string]*TaskModel
	seeds  map[string][]Example // replayed examples awaiting Attach
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*TaskModel), seeds: make(map[string][]Example)}
}

// SeedExamples stages replayed training examples for a task. A model
// already attached trains on them immediately; otherwise they are held
// and fed to the model when (if) one is attached, so replay order and
// attach order commute.
func (r *Registry) SeedExamples(task string, examples []Example) {
	key := strings.ToLower(task)
	r.mu.Lock()
	m := r.models[key]
	if m == nil {
		r.seeds[key] = append(r.seeds[key], examples...)
	}
	r.mu.Unlock()
	if m != nil {
		for _, ex := range examples {
			m.Train(ex.Args, ex.Label)
		}
	}
}

// Attach registers a model for a task, replacing any previous one, and
// trains it on any staged replayed examples.
func (r *Registry) Attach(m *TaskModel) {
	key := strings.ToLower(m.Task)
	r.mu.Lock()
	r.models[key] = m
	seeds := r.seeds[key]
	delete(r.seeds, key)
	r.mu.Unlock()
	for _, ex := range seeds {
		m.Train(ex.Args, ex.Label)
	}
}

// For returns the model for a task, if any.
func (r *Registry) For(task string) (*TaskModel, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[strings.ToLower(task)]
	return m, ok
}

// All returns every attached model sorted by task name.
func (r *Registry) All() []*TaskModel {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TaskModel, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}
