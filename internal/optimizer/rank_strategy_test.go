package optimizer

import (
	"testing"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

func rankDefs(t *testing.T) (rate, cmp *qlang.TaskDef) {
	t.Helper()
	script, err := qlang.Parse(`
TASK rateIt(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate. %s", img
  Response: Rating(1, 9)
  Compare: orderIt

TASK orderIt(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order."
  Response: Order
`)
	if err != nil {
		t.Fatal(err)
	}
	rate, _ = script.Task("rateIt")
	cmp, _ = script.Task("orderIt")
	return rate, cmp
}

func newRankOpt(t *testing.T) *Optimizer {
	t.Helper()
	clock := mturk.NewClock()
	t.Cleanup(clock.Close)
	pool := crowd.NewPool(crowd.Config{Seed: 1}, crowd.OracleFunc(
		func(task string, args []relation.Value) relation.Value { return relation.Null }))
	market := mturk.NewMarketplace(clock, pool)
	return New(taskmgr.New(market, cache.New(), model.NewRegistry(), budget.NewAccount(0)))
}

func TestChooseRankStrategyRateOnly(t *testing.T) {
	o := newRankOpt(t)
	rate, _ := rankDefs(t)
	p := o.ChooseRankStrategy(rate, nil, 100, 0)
	if p.Strategy != rank.StrategyRate {
		t.Fatalf("strategy = %s, want rate when no comparison companion exists", p.Strategy)
	}
	if p.EligibleCompare || p.CostCompare != 0 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestChooseRankStrategyCompareOnly(t *testing.T) {
	o := newRankOpt(t)
	_, cmp := rankDefs(t)
	p := o.ChooseRankStrategy(nil, cmp, 100, 0)
	if p.Strategy != rank.StrategyCompare {
		t.Fatalf("strategy = %s, want compare for a pure Rank task", p.Strategy)
	}
}

func TestChooseRankStrategyHybridUndercutsCompare(t *testing.T) {
	o := newRankOpt(t)
	rate, cmp := rankDefs(t)
	p := o.ChooseRankStrategy(rate, cmp, 200, 0)
	if p.Strategy != rank.StrategyHybrid {
		t.Fatalf("strategy = %s (costs rate=%v compare=%v hybrid=%v)",
			p.Strategy, p.CostRate, p.CostCompare, p.CostHybrid)
	}
	if p.CostHybrid >= p.CostCompare {
		t.Fatalf("hybrid %v should undercut compare %v at n=200", p.CostHybrid, p.CostCompare)
	}
	if p.RateMeetsTarget {
		t.Fatal("fresh engine cannot certify rating agreement")
	}
}

func TestChooseRankStrategyTopKShrinksCompare(t *testing.T) {
	o := newRankOpt(t)
	rate, cmp := rankDefs(t)
	full := o.ChooseRankStrategy(rate, cmp, 200, 0)
	topk := o.ChooseRankStrategy(rate, cmp, 200, 3)
	if topk.CostCompare >= full.CostCompare {
		t.Fatalf("top-3 compare %v should undercut full compare %v", topk.CostCompare, full.CostCompare)
	}
}

func TestRankChooserUsesNodeShape(t *testing.T) {
	o := newRankOpt(t)
	rate, cmp := rankDefs(t)
	cmp.GroupSize = 7
	choose := o.RankChooser()
	d := choose(&plan.Rank{Task: rate, Compare: cmp, TopK: 4, Desc: true}, 120)
	if d.GroupSize != 7 || d.TopK != 4 || !d.Desc {
		t.Fatalf("decision = %+v", d)
	}
}
