package optimizer

import (
	"testing"

	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// newBackendTestMgr builds a minimal manager over a trivially-true
// simulated crowd for routing tests.
func newBackendTestMgr() *taskmgr.Manager {
	pool := crowd.NewPool(crowd.Config{Seed: 1}, crowd.OracleFunc(
		func(task string, args []relation.Value) relation.Value { return relation.NewBool(true) }))
	return taskmgr.New(mturk.NewMarketplace(mturk.NewClock(), pool), nil, nil, nil)
}

// backendCandidates is the canonical routing menu: a cheap, noisier LLM
// crowd that only serves filters, against the full-service simulated
// human crowd.
func backendCandidates() []BackendCandidate {
	return []BackendCandidate{
		{Name: "llm", PriceCents: 1, Quality: 0.90, Kinds: []qlang.TaskType{qlang.TaskFilter}},
		{Name: "sim", PriceCents: 2, Quality: 0.85},
	}
}

func TestChooseBackendRoutesCheapWhenConfident(t *testing.T) {
	o := New(newBackendTestMgr())
	// Filter at 3-way redundancy: both crowds clear the 0.9 target
	// (majority of 3 at q=0.90 ≈ 0.972, at q=0.85 ≈ 0.939), so the
	// cheaper LLM wins.
	if got := o.ChooseBackend(backendCandidates(), qlang.TaskFilter, 3); got != "llm" {
		t.Fatalf("filter routed to %q, want llm", got)
	}
	// Ranks are outside the LLM's served kinds: only sim is eligible.
	if got := o.ChooseBackend(backendCandidates(), qlang.TaskRank, 3); got != "sim" {
		t.Fatalf("rank routed to %q, want sim", got)
	}
}

func TestChooseBackendFallsBackToQuality(t *testing.T) {
	o := New(newBackendTestMgr())
	o.TargetConfidence = 0.999
	// Nobody clears an extreme target at single redundancy; the
	// highest-quality candidate wins regardless of price.
	if got := o.ChooseBackend(backendCandidates(), qlang.TaskFilter, 1); got != "llm" {
		t.Fatalf("fallback routed to %q, want highest quality", got)
	}
	cands := []BackendCandidate{
		{Name: "a", PriceCents: 1, Quality: 0.80},
		{Name: "b", PriceCents: 9, Quality: 0.95},
	}
	if got := o.ChooseBackend(cands, qlang.TaskFilter, 1); got != "b" {
		t.Fatalf("fallback routed to %q, want b (quality over price)", got)
	}
}

// TestChooseBackendLearnsFromLiveEvidence seeds the manager's backend
// book with finalized-HIT observations that contradict the configured
// priors: the LLM's real agreement is far below its advertised quality.
// Once the cell has enough evidence the live estimate overrides the
// prior and routing flips back to the human crowd.
func TestChooseBackendLearnsFromLiveEvidence(t *testing.T) {
	mgr := newBackendTestMgr()
	o := New(mgr)
	cands := backendCandidates()
	if got := o.ChooseBackend(cands, qlang.TaskFilter, 3); got != "llm" {
		t.Fatalf("prior routing = %q, want llm", got)
	}
	kind := qlang.TaskFilter.String()
	book := mgr.BackendBook()
	// Four observations: still below the evidence threshold, priors
	// hold.
	for i := 0; i < 4; i++ {
		book.Observe("llm", kind, 1, 0.1, 0.55)
	}
	if got := o.ChooseBackend(cands, qlang.TaskFilter, 3); got != "llm" {
		t.Fatalf("routing flipped on thin evidence: %q", got)
	}
	// The fifth observation crosses it: measured quality ~0.55 can't
	// reach the confidence target, so the sim crowd takes over.
	book.Observe("llm", kind, 1, 0.1, 0.55)
	if got := o.ChooseBackend(cands, qlang.TaskFilter, 3); got != "sim" {
		t.Fatalf("routing ignored live evidence: %q", got)
	}
	// Other kinds' cells are untouched; rank still routes to sim for
	// its own reason (served kinds), filter evidence doesn't leak.
	if v, n := book.Quality("llm", qlang.TaskRank.String()); n != 0 || v != 0 {
		t.Fatalf("rank cell contaminated: v=%v n=%d", v, n)
	}
}

func TestBackendChooserResolvesPolicyRedundancy(t *testing.T) {
	mgr := newBackendTestMgr()
	o := New(mgr)
	// At the default 3-way policy redundancy the LLM clears the target.
	choose := o.BackendChooser(backendCandidates())
	if got := choose("isCat", qlang.TaskFilter); got != "llm" {
		t.Fatalf("chooser routed to %q, want llm", got)
	}
	// A task pinned to single-assignment posting can't majority-vote
	// its way to confidence: quality fallback also favors llm (0.90),
	// but dropping its advertised quality below sim's flips it.
	pol := mgr.PolicyFor(&qlang.TaskDef{Name: "isCat", Type: qlang.TaskFilter})
	pol.Assignments = 1
	mgr.SetPolicy("isCat", pol)
	cands := []BackendCandidate{
		{Name: "llm", PriceCents: 1, Quality: 0.80, Kinds: []qlang.TaskType{qlang.TaskFilter}},
		{Name: "sim", PriceCents: 2, Quality: 0.95},
	}
	if got := o.BackendChooser(cands)("isCat", qlang.TaskFilter); got != "sim" {
		t.Fatalf("chooser routed to %q, want sim at 1-way redundancy", got)
	}
}
