// Package optimizer implements Qurk's Query Optimizer (paper §2): the
// optimization function accounts for monetary cost, the number of
// turkers to assign to each HIT, and overall query performance, and —
// because "query selectivities for HIT-based operators are not known a
// priori" — it adapts during execution using the Statistics Manager's
// estimates.
package optimizer

import (
	"math"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/exec"
	"repro/internal/qlang"
	"repro/internal/taskmgr"
)

// MajorityProb returns the probability that a majority of n independent
// workers with per-answer accuracy p produce the correct answer (ties
// count as incorrect, matching stats.MajorityBool).
func MajorityProb(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	total := 0.0
	for k := n/2 + 1; k <= n; k++ {
		total += binomial(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	return total
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Multiplicative formula keeps this exact for dashboard-scale n.
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}

// ChooseAssignments returns the smallest odd assignment count whose
// majority vote reaches target confidence given per-worker accuracy p,
// capped at maxN (the paper's "number of turkers to assign to each HIT").
func ChooseAssignments(p, target float64, maxN int) int {
	if maxN < 1 {
		maxN = 1
	}
	if p >= target {
		return 1
	}
	if p <= 0.5 {
		return maxN // redundancy cannot fix a coin-flip worker
	}
	for n := 3; n <= maxN; n += 2 {
		if MajorityProb(p, n) >= target {
			return n
		}
	}
	return maxN
}

// ChooseBatchSize picks the largest batch whose predicted per-question
// accuracy stays above minAccuracy, given base worker accuracy and the
// crowd's per-extra-question decay (mirrors crowd.Config.BatchPenalty).
func ChooseBatchSize(baseAccuracy, batchPenalty, minAccuracy float64, maxBatch int) int {
	if maxBatch < 1 {
		maxBatch = 1
	}
	best := 1
	for b := 1; b <= maxBatch; b++ {
		m := 1 - batchPenalty*float64(b-1)
		if m < 0.55 {
			m = 0.55
		}
		if baseAccuracy*m >= minAccuracy {
			best = b
		}
	}
	return best
}

// FilterCost estimates the money to run one boolean task over n tuples
// under a policy (questions / batch, rounded up, × price × assignments).
func FilterCost(n int, pol taskmgr.Policy) budget.Cents {
	if n <= 0 {
		return 0
	}
	hits := (n + pol.BatchSize - 1) / pol.BatchSize
	return budget.Cents(int64(hits) * pol.PriceCents * int64(pol.Assignments))
}

// JoinCost estimates the two-column join cost for an l×r cross product
// with the given block shape.
func JoinCost(l, r, blockL, blockR int, pol taskmgr.Policy) budget.Cents {
	if l <= 0 || r <= 0 {
		return 0
	}
	if blockL < 1 {
		blockL = 1
	}
	if blockR < 1 {
		blockR = 1
	}
	blocks := ((l + blockL - 1) / blockL) * ((r + blockR - 1) / blockR)
	return budget.Cents(int64(blocks) * pol.PriceCents * int64(pol.Assignments))
}

// PreFilterPlan decides whether running a cheap feature filter over both
// join inputs (selectivity σ each side) pays for itself by shrinking the
// cross product (the dashboard's "filtering-based reduction in
// cross-product size").
type PreFilterPlan struct {
	UsePreFilter  bool
	CostWithout   budget.Cents
	CostWith      budget.Cents
	ExpectedLeft  int
	ExpectedRight int
}

// DecidePreFilter compares join-only cost against filter-both-sides-
// then-join cost.
func DecidePreFilter(l, r int, selL, selR float64, blockL, blockR int,
	filterPol, joinPol taskmgr.Policy) PreFilterPlan {
	without := JoinCost(l, r, blockL, blockR, joinPol)
	fl := int(math.Ceil(float64(l) * selL))
	fr := int(math.Ceil(float64(r) * selR))
	with := FilterCost(l, filterPol) + FilterCost(r, filterPol) +
		JoinCost(fl, fr, blockL, blockR, joinPol)
	return PreFilterPlan{
		UsePreFilter:  with < without,
		CostWithout:   without,
		CostWith:      with,
		ExpectedLeft:  fl,
		ExpectedRight: fr,
	}
}

// Optimizer adapts task policies and filter orderings from live
// statistics.
type Optimizer struct {
	Mgr *taskmgr.Manager
	// TargetConfidence for majority votes (default 0.9).
	TargetConfidence float64
	// WorkerAccuracy is the assumed base accuracy before statistics
	// accumulate (default 0.85).
	WorkerAccuracy float64
	// BatchPenalty mirrors the crowd's accuracy decay (default 0.015).
	BatchPenalty float64
	// MinAccuracy bounds batch growth (default 0.78).
	MinAccuracy float64
	// MaxAssignments and MaxBatch cap the knobs.
	MaxAssignments, MaxBatch int
}

// New returns an optimizer with documented defaults bound to mgr.
func New(mgr *taskmgr.Manager) *Optimizer {
	return &Optimizer{
		Mgr:              mgr,
		TargetConfidence: 0.9,
		WorkerAccuracy:   0.85,
		BatchPenalty:     0.015,
		MinAccuracy:      0.78,
		MaxAssignments:   9,
		MaxBatch:         10,
	}
}

// TunePolicies derives and installs a policy for every task in the
// script: assignments from the redundancy model, batch size from the
// accuracy-decay model.
func (o *Optimizer) TunePolicies(script *qlang.Script) {
	for _, def := range script.Tasks {
		pol := o.PolicyFor(def)
		o.Mgr.SetPolicy(def.Name, pol)
	}
}

// PolicyFor computes the tuned policy for one task without installing it.
func (o *Optimizer) PolicyFor(def *qlang.TaskDef) taskmgr.Policy {
	pol := taskmgr.DefaultPolicy()
	pol.Assignments = ChooseAssignments(o.WorkerAccuracy, o.TargetConfidence, o.MaxAssignments)
	switch def.Type {
	case qlang.TaskFilter:
		pol.BatchSize = ChooseBatchSize(o.WorkerAccuracy, o.BatchPenalty, o.MinAccuracy, o.MaxBatch)
	case qlang.TaskRating:
		pol.BatchSize = ChooseBatchSize(o.WorkerAccuracy, o.BatchPenalty, o.MinAccuracy, o.MaxBatch)
	case qlang.TaskQuestion, qlang.TaskGenerative:
		// Free-text work is error-prone when batched; keep it small.
		pol.BatchSize = 1
	}
	return pol
}

// FilterOrder returns an exec.Config hook that re-orders a filter's
// human conjuncts by ascending cost-to-survive: predicates that are
// cheap and drop many tuples run first, so later (expensive) predicates
// see fewer tuples. Ordering uses live selectivity estimates, so it
// adapts as HIT results arrive — the paper's "adaptive approach".
func (o *Optimizer) FilterOrder(script *qlang.Script) func([]qlang.Expr) []int {
	return func(conjuncts []qlang.Expr) []int {
		type ranked struct {
			idx  int
			rank float64
		}
		rs := make([]ranked, len(conjuncts))
		for i, c := range conjuncts {
			sel, cost := o.conjunctEstimates(c, script)
			// Classic predicate ordering: ascending cost/(1-sel).
			drop := 1 - sel
			if drop < 0.01 {
				drop = 0.01
			}
			rs[i] = ranked{idx: i, rank: cost / drop}
		}
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].rank < rs[b].rank })
		order := make([]int, len(rs))
		for i, r := range rs {
			order[i] = r.idx
		}
		return order
	}
}

// conjunctEstimates aggregates selectivity and per-tuple cost for the
// tasks inside one conjunct.
func (o *Optimizer) conjunctEstimates(c qlang.Expr, script *qlang.Script) (sel, costCents float64) {
	sel, costCents = 1.0, 0.0
	for _, call := range exec.CollectCalls(c, script) {
		st := o.Mgr.StatsFor(strings.ToLower(call.Name))
		def, _ := script.Task(call.Name)
		pol := taskmgr.DefaultPolicy()
		if def != nil {
			pol = o.Mgr.PolicyFor(def)
		}
		perTuple := float64(pol.PriceCents) * float64(pol.Assignments) / float64(pol.BatchSize)
		costCents += perTuple
		sel *= st.Selectivity
	}
	return sel, costCents
}

// EstimateRemaining projects the money needed to finish a workload of n
// more applications of a task under its current policy — the dashboard's
// "estimates for total query cost".
func (o *Optimizer) EstimateRemaining(def *qlang.TaskDef, n int) budget.Cents {
	return FilterCost(n, o.Mgr.PolicyFor(def))
}
