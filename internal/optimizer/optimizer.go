// Package optimizer implements Qurk's Query Optimizer (paper §2): the
// optimization function accounts for monetary cost, the number of
// turkers to assign to each HIT, and overall query performance, and —
// because "query selectivities for HIT-based operators are not known a
// priori" — it adapts during execution using the Statistics Manager's
// estimates.
package optimizer

import (
	"math"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/taskmgr"
)

// MajorityProb returns the probability that a majority of n independent
// workers with per-answer accuracy p produce the correct answer (ties
// count as incorrect, matching stats.MajorityBool).
func MajorityProb(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	total := 0.0
	for k := n/2 + 1; k <= n; k++ {
		total += binomial(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	return total
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Multiplicative formula keeps this exact for dashboard-scale n.
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}

// ChooseAssignments returns the smallest odd assignment count whose
// majority vote reaches target confidence given per-worker accuracy p,
// capped at maxN (the paper's "number of turkers to assign to each HIT").
func ChooseAssignments(p, target float64, maxN int) int {
	if maxN < 1 {
		maxN = 1
	}
	if p >= target {
		return 1
	}
	if p <= 0.5 {
		return maxN // redundancy cannot fix a coin-flip worker
	}
	for n := 3; n <= maxN; n += 2 {
		if MajorityProb(p, n) >= target {
			return n
		}
	}
	return maxN
}

// ChooseBatchSize picks the largest batch whose predicted per-question
// accuracy stays above minAccuracy, given base worker accuracy and the
// crowd's per-extra-question decay (mirrors crowd.Config.BatchPenalty).
func ChooseBatchSize(baseAccuracy, batchPenalty, minAccuracy float64, maxBatch int) int {
	if maxBatch < 1 {
		maxBatch = 1
	}
	best := 1
	for b := 1; b <= maxBatch; b++ {
		m := 1 - batchPenalty*float64(b-1)
		if m < 0.55 {
			m = 0.55
		}
		if baseAccuracy*m >= minAccuracy {
			best = b
		}
	}
	return best
}

// FilterCost estimates the money to run one boolean task over n tuples
// under a policy (questions / batch, rounded up, × price × assignments).
// The policy is clamped the way taskmgr clamps before use, so a
// zero-valued Policy{} costs as the minimal one instead of dividing by
// zero.
func FilterCost(n int, pol taskmgr.Policy) budget.Cents {
	if n <= 0 {
		return 0
	}
	pol = pol.Clamped()
	hits := (n + pol.BatchSize - 1) / pol.BatchSize
	return budget.Cents(int64(hits) * pol.PriceCents * int64(pol.Assignments))
}

// JoinCost estimates the two-column join cost for an l×r cross product
// with the given block shape.
func JoinCost(l, r, blockL, blockR int, pol taskmgr.Policy) budget.Cents {
	if l <= 0 || r <= 0 {
		return 0
	}
	pol = pol.Clamped()
	if blockL < 1 {
		blockL = 1
	}
	if blockR < 1 {
		blockR = 1
	}
	blocks := ((l + blockL - 1) / blockL) * ((r + blockR - 1) / blockR)
	return budget.Cents(int64(blocks) * pol.PriceCents * int64(pol.Assignments))
}

// JoinCoster prices an l×r human-join cross product under a policy; the
// grid and pairwise interfaces provide the two implementations, so the
// same pre-filter decision logic covers both.
type JoinCoster func(l, r int, pol taskmgr.Policy) budget.Cents

// GridJoinCoster prices the two-column grid interface (Figure 3): one
// HIT per blockL×blockR block pair.
func GridJoinCoster(blockL, blockR int) JoinCoster {
	return func(l, r int, pol taskmgr.Policy) budget.Cents {
		return JoinCost(l, r, blockL, blockR, pol)
	}
}

// PairwiseJoinCost prices the one-question-per-pair baseline interface
// (exec.Config.JoinPairwise): l×r boolean questions, batched under the
// task policy like any other filter-shaped workload. Per pair the cost
// is price × assignments / batch — typically far steeper than the
// grid's per-pair share, which is why pre-filtering pays off even
// sooner for pairwise joins.
func PairwiseJoinCost(l, r int, pol taskmgr.Policy) budget.Cents {
	if l <= 0 || r <= 0 {
		return 0
	}
	return FilterCost(l*r, pol)
}

// PairwiseJoinCoster adapts PairwiseJoinCost to the JoinCoster hook.
func PairwiseJoinCoster() JoinCoster { return PairwiseJoinCost }

// PreFilterPlan decides whether running a cheap feature filter over both
// join inputs (selectivity σ each side) pays for itself by shrinking the
// cross product (the dashboard's "filtering-based reduction in
// cross-product size").
type PreFilterPlan struct {
	UsePreFilter  bool
	CostWithout   budget.Cents
	CostWith      budget.Cents
	ExpectedLeft  int
	ExpectedRight int
}

// DecidePreFilter compares join-only cost against filter-both-sides-
// then-join cost for the two-column grid interface.
func DecidePreFilter(l, r int, selL, selR float64, blockL, blockR int,
	filterPol, joinPol taskmgr.Policy) PreFilterPlan {
	return DecidePreFilterWith(GridJoinCoster(blockL, blockR), l, r, selL, selR, filterPol, joinPol)
}

// DecidePreFilterWith is DecidePreFilter under an arbitrary join cost
// model — the per-pair term that makes pairwise joins (and any future
// interface) eligible for cost-based pre-filtering.
func DecidePreFilterWith(joinCost JoinCoster, l, r int, selL, selR float64,
	filterPol, joinPol taskmgr.Policy) PreFilterPlan {
	without := joinCost(l, r, joinPol)
	fl := int(math.Ceil(float64(l) * selL))
	fr := int(math.Ceil(float64(r) * selR))
	with := FilterCost(l, filterPol) + FilterCost(r, filterPol) +
		joinCost(fl, fr, joinPol)
	return PreFilterPlan{
		UsePreFilter:  with < without,
		CostWithout:   without,
		CostWith:      with,
		ExpectedLeft:  fl,
		ExpectedRight: fr,
	}
}

// PreFilterChoice is the four-way pre-filter decision: which join
// inputs (if any) to wrap, with the baseline and chosen-plan costs.
type PreFilterChoice struct {
	Left, Right bool
	CostNone    budget.Cents
	CostBest    budget.Cents
}

// ChoosePreFilter prices all four pre-filter plans — none, left only,
// right only, both — with per-side selectivities and picks the
// cheapest. This is what per-side estimates buy over DecidePreFilter's
// both-or-nothing model: a side the filter keeps whole (selectivity
// near 1) stops paying for its filter stage while the decimated side
// still shrinks the cross product. Ties prefer fewer filter stages.
func ChoosePreFilter(l, r int, selL, selR float64, blockL, blockR int,
	filterPol, joinPol taskmgr.Policy) PreFilterChoice {
	return ChoosePreFilterWith(GridJoinCoster(blockL, blockR), l, r, selL, selR, filterPol, joinPol)
}

// ChoosePreFilterWith is ChoosePreFilter under an arbitrary join cost
// model (see JoinCoster).
func ChoosePreFilterWith(joinCost JoinCoster, l, r int, selL, selR float64,
	filterPol, joinPol taskmgr.Policy) PreFilterChoice {
	fl := int(math.Ceil(float64(l) * selL))
	fr := int(math.Ceil(float64(r) * selR))
	filterL, filterR := FilterCost(l, filterPol), FilterCost(r, filterPol)
	c := PreFilterChoice{CostNone: joinCost(l, r, joinPol)}
	c.CostBest = c.CostNone
	consider := func(left, right bool, cost budget.Cents) {
		if cost < c.CostBest {
			c.Left, c.Right, c.CostBest = left, right, cost
		}
	}
	consider(true, false, filterL+joinCost(fl, r, joinPol))
	consider(false, true, filterR+joinCost(l, fr, joinPol))
	consider(true, true, filterL+filterR+joinCost(fl, fr, joinPol))
	return c
}

// DecidePreFilterSide costs filtering just one join input, with the
// other side's cardinality held fixed — the executor's mid-query
// re-check, applied to the tuples whose filter question has not been
// submitted (and is not already answered by the cache) yet.
func DecidePreFilterSide(n, other int, sel float64, blockL, blockR int,
	filterPol, joinPol taskmgr.Policy) PreFilterPlan {
	return DecidePreFilterSideWith(GridJoinCoster(blockL, blockR), n, other, sel, filterPol, joinPol)
}

// DecidePreFilterSideWith is DecidePreFilterSide under an arbitrary
// join cost model (see JoinCoster).
func DecidePreFilterSideWith(joinCost JoinCoster, n, other int, sel float64,
	filterPol, joinPol taskmgr.Policy) PreFilterPlan {
	without := joinCost(n, other, joinPol)
	fn := int(math.Ceil(float64(n) * sel))
	with := FilterCost(n, filterPol) + joinCost(fn, other, joinPol)
	return PreFilterPlan{
		UsePreFilter: with < without,
		CostWithout:  without,
		CostWith:     with,
		ExpectedLeft: fn,
	}
}

// Optimizer adapts task policies and filter orderings from live
// statistics.
type Optimizer struct {
	Mgr *taskmgr.Manager
	// TargetConfidence for majority votes (default 0.9).
	TargetConfidence float64
	// WorkerAccuracy is the assumed base accuracy before statistics
	// accumulate (default 0.85).
	WorkerAccuracy float64
	// BatchPenalty mirrors the crowd's accuracy decay (default 0.015).
	BatchPenalty float64
	// MinAccuracy bounds batch growth (default 0.78).
	MinAccuracy float64
	// MaxAssignments and MaxBatch cap the knobs.
	MaxAssignments, MaxBatch int
	// MinPreFilterTrials is how many live selectivity observations a
	// join's feature filter needs before the mid-query re-check may
	// overturn the plan-time pre-filter decision (default 10).
	MinPreFilterTrials int
}

// New returns an optimizer with documented defaults bound to mgr.
func New(mgr *taskmgr.Manager) *Optimizer {
	return &Optimizer{
		Mgr:                mgr,
		TargetConfidence:   0.9,
		WorkerAccuracy:     0.85,
		BatchPenalty:       0.015,
		MinAccuracy:        0.78,
		MaxAssignments:     9,
		MaxBatch:           10,
		MinPreFilterTrials: 10,
	}
}

// TunePolicies derives and installs a policy for every task in the
// script: assignments from the redundancy model, batch size from the
// accuracy-decay model.
func (o *Optimizer) TunePolicies(script *qlang.Script) {
	for _, def := range script.Tasks {
		pol := o.PolicyFor(def)
		o.Mgr.SetPolicy(def.Name, pol)
	}
}

// PolicyFor computes the tuned policy for one task without installing it.
func (o *Optimizer) PolicyFor(def *qlang.TaskDef) taskmgr.Policy {
	pol := taskmgr.DefaultPolicy()
	pol.Assignments = ChooseAssignments(o.WorkerAccuracy, o.TargetConfidence, o.MaxAssignments)
	switch def.Type {
	case qlang.TaskFilter:
		pol.BatchSize = ChooseBatchSize(o.WorkerAccuracy, o.BatchPenalty, o.MinAccuracy, o.MaxBatch)
	case qlang.TaskRating:
		pol.BatchSize = ChooseBatchSize(o.WorkerAccuracy, o.BatchPenalty, o.MinAccuracy, o.MaxBatch)
	case qlang.TaskQuestion, qlang.TaskGenerative:
		// Free-text work is error-prone when batched; keep it small.
		pol.BatchSize = 1
	}
	return pol
}

// FilterOrder returns an exec.Config hook that re-orders a filter's
// human conjuncts by ascending cost-to-survive: predicates that are
// cheap and drop many tuples run first, so later (expensive) predicates
// see fewer tuples. Ordering uses live selectivity estimates, so it
// adapts as HIT results arrive — the paper's "adaptive approach".
func (o *Optimizer) FilterOrder(script *qlang.Script) func([]qlang.Expr) []int {
	return func(conjuncts []qlang.Expr) []int {
		type ranked struct {
			idx  int
			rank float64
		}
		rs := make([]ranked, len(conjuncts))
		for i, c := range conjuncts {
			sel, cost := o.conjunctEstimates(c, script)
			// Classic predicate ordering: ascending cost/(1-sel).
			drop := 1 - sel
			if drop < 0.01 {
				drop = 0.01
			}
			rs[i] = ranked{idx: i, rank: cost / drop}
		}
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].rank < rs[b].rank })
		order := make([]int, len(rs))
		for i, r := range rs {
			order[i] = r.idx
		}
		return order
	}
}

// conjunctEstimates aggregates selectivity and per-tuple cost for the
// tasks inside one conjunct.
func (o *Optimizer) conjunctEstimates(c qlang.Expr, script *qlang.Script) (sel, costCents float64) {
	sel, costCents = 1.0, 0.0
	for _, call := range exec.CollectCalls(c, script) {
		st := o.Mgr.StatsFor(strings.ToLower(call.Name))
		def, _ := script.Task(call.Name)
		pol := taskmgr.DefaultPolicy()
		if def != nil {
			pol = o.Mgr.PolicyFor(def)
		}
		// Clamp like taskmgr does before dividing: a zero-valued policy
		// must not yield ±Inf ranks that scramble predicate ordering.
		pol = pol.Clamped()
		perTuple := float64(pol.PriceCents) * float64(pol.Assignments) / float64(pol.BatchSize)
		costCents += perTuple
		sel *= st.Selectivity
	}
	return sel, costCents
}

// EstimateRemaining projects the money needed to finish a workload of n
// more applications of a task under its current policy — the dashboard's
// "estimates for total query cost".
func (o *Optimizer) EstimateRemaining(def *qlang.TaskDef, n int) budget.Cents {
	return FilterCost(n, o.Mgr.PolicyFor(def))
}

// preFilterPolicy is the policy a join's feature filter runs under:
// the task's tuned policy with redundancy forced to one. A pre-filter
// is an approximation the join predicate re-checks anyway (POSSIBLY
// semantics), so majority voting is not worth paying for.
func (o *Optimizer) preFilterPolicy(filter *qlang.TaskDef) taskmgr.Policy {
	pol := o.Mgr.PolicyFor(filter)
	pol.Assignments = 1
	return pol
}

func normBlock(b int) int {
	if b <= 0 {
		return 5 // exec.Config's default grid edge (Figure 3)
	}
	return b
}

// PreFilterDecider returns the planner hook for plan.ApplyPreFilters
// priced for the two-column grid interface; see PreFilterDeciderFor.
func (o *Optimizer) PreFilterDecider(blockL, blockR int) plan.PreFilterDecider {
	return o.PreFilterDeciderFor(exec.Config{JoinLeftBlock: blockL, JoinRightBlock: blockR})
}

// PreFilterDeciderFor returns the planner hook for plan.ApplyPreFilters:
// it prices the join-only baseline against filtering the left input,
// the right input, or both (ChoosePreFilter), using the Statistics
// Manager's per-side selectivity estimates for the filter task. The
// join cost model follows the executor config — the blockL×blockR grid
// normally, the per-pair term when cfg.JoinPairwise runs the
// one-question-per-pair baseline interface.
//
// Until any side-tagged observation exists (live or replayed from the
// knowledge store) the estimates are one shared prior that cannot tell
// the sides apart, so the decider falls back to the conservative
// both-sides-or-nothing model (DecidePreFilter) and lets the executor's
// per-stage re-check drop an unprofitable side once evidence arrives.
func (o *Optimizer) PreFilterDeciderFor(cfg exec.Config) plan.PreFilterDecider {
	coster := o.joinCosterFor(cfg, true)
	return func(join, filter *qlang.TaskDef, l, r int) plan.PreFilterDecision {
		fpol := o.preFilterPolicy(filter)
		jpol := o.Mgr.PolicyFor(join)
		if !o.Mgr.HasSideEvidence(filter.Name) {
			sel := o.Mgr.StatsFor(filter.Name).Selectivity
			if p := DecidePreFilterWith(coster, l, r, sel, sel, fpol, jpol); p.UsePreFilter {
				return plan.PreFilterDecision{Left: true, Right: true}
			}
			return plan.PreFilterDecision{}
		}
		selL, _ := o.Mgr.SideSelectivity(filter.Name, taskmgr.SideLeft)
		selR, _ := o.Mgr.SideSelectivity(filter.Name, taskmgr.SideRight)
		c := ChoosePreFilterWith(coster, l, r, selL, selR, fpol, jpol)
		return plan.PreFilterDecision{Left: c.Left, Right: c.Right}
	}
}

// joinCosterFor picks the join cost model matching the executor config.
// leftFirst orients the grid blocks: the plan-time decider always costs
// (left, right) while the keep-hook costs (this side, other side).
func (o *Optimizer) joinCosterFor(cfg exec.Config, leftFirst bool) JoinCoster {
	if cfg.JoinPairwise {
		return PairwiseJoinCoster()
	}
	blockL, blockR := normBlock(cfg.JoinLeftBlock), normBlock(cfg.JoinRightBlock)
	if leftFirst {
		return GridJoinCoster(blockL, blockR)
	}
	return GridJoinCoster(blockR, blockL)
}

// PreFilterKeep returns the executor's mid-query re-check hook priced
// for the two-column grid interface; see PreFilterKeepFor.
func (o *Optimizer) PreFilterKeep(blockL, blockR int) func(pf *plan.PreFilter, remaining int) bool {
	return o.PreFilterKeepFor(exec.Config{JoinLeftBlock: blockL, JoinRightBlock: blockR})
}

// PreFilterKeepFor returns the executor's mid-query re-check hook:
// before each block of filter questions is submitted it re-prices
// filtering the still-unsubmitted (and uncached — the executor probes
// the task cache with a counter-free Contains probe) tuples against
// joining them unfiltered, with the selectivity the Statistics Manager
// has accumulated so far for this stage's own join side (falling back
// to the combined estimate while the side is unobserved). The join
// cost model follows the executor config (grid or pairwise). Until
// MinPreFilterTrials observations exist the plan-time decision stands.
func (o *Optimizer) PreFilterKeepFor(cfg exec.Config) func(pf *plan.PreFilter, remaining int) bool {
	leftCoster := o.joinCosterFor(cfg, true)
	rightCoster := o.joinCosterFor(cfg, false)
	return func(pf *plan.PreFilter, remaining int) bool {
		if remaining <= 0 {
			return true
		}
		side := taskmgr.SideRight
		if pf.Left {
			side = taskmgr.SideLeft
		}
		sel, trials := o.Mgr.SideSelectivity(pf.Task.Name, side)
		if trials < o.MinPreFilterTrials {
			return true
		}
		fpol := o.preFilterPolicy(pf.Task)
		jpol := o.Mgr.PolicyFor(pf.Join.HumanTask)
		var p PreFilterPlan
		if pf.Left {
			p = DecidePreFilterSideWith(leftCoster, remaining, plan.EstimateRows(pf.Join.Right), sel, fpol, jpol)
		} else {
			p = DecidePreFilterSideWith(rightCoster, remaining, plan.EstimateRows(pf.Join.Left), sel, fpol, jpol)
		}
		return p.UsePreFilter
	}
}
