package optimizer

import (
	"testing"

	"repro/internal/taskmgr"
)

func TestPairwiseJoinCost(t *testing.T) {
	pol := taskmgr.Policy{Assignments: 3, BatchSize: 5, PriceCents: 1}
	// 20×30 = 600 pairs at 3 assignments / batch 5 = 120 HITs = 360¢.
	if got := PairwiseJoinCost(20, 30, pol); got != 360 {
		t.Fatalf("PairwiseJoinCost = %v, want 360", got)
	}
	if got := PairwiseJoinCost(0, 30, pol); got != 0 {
		t.Fatalf("empty side must cost 0, got %v", got)
	}
}

// TestPairwisePreFilterEligible is the ROADMAP item: under the
// per-pair cost model a selective feature filter pays for itself at
// cardinalities where the cheap two-column grid says it would not.
func TestPairwisePreFilterEligible(t *testing.T) {
	fpol := taskmgr.Policy{Assignments: 1, BatchSize: 1, PriceCents: 1}
	jpol := taskmgr.Policy{Assignments: 3, BatchSize: 1, PriceCents: 1}
	l, r, sel := 20, 20, 0.5
	grid := DecidePreFilter(l, r, sel, sel, 5, 5, fpol, jpol)
	pair := DecidePreFilterWith(PairwiseJoinCoster(), l, r, sel, sel, fpol, jpol)
	// Grid: 16 blocks × 3¢ = 48¢ without; filters cost 40¢ + 4 blocks ×
	// 3¢ = 52¢ with → not worth it. Pairwise: 400 pairs × 3¢ = 1200¢
	// without; 40¢ + 100 × 3¢ = 340¢ with → clearly worth it.
	if grid.UsePreFilter {
		t.Fatalf("grid model unexpectedly pre-filters: %+v", grid)
	}
	if !pair.UsePreFilter {
		t.Fatalf("pairwise model must pre-filter: %+v", pair)
	}
	if pair.CostWith >= pair.CostWithout {
		t.Fatalf("pairwise costs inverted: %+v", pair)
	}
	// The side-wise re-check hook prices the same way.
	side := DecidePreFilterSideWith(PairwiseJoinCoster(), l, r, sel, fpol, jpol)
	if !side.UsePreFilter {
		t.Fatalf("pairwise side re-check must keep filtering: %+v", side)
	}
	choice := ChoosePreFilterWith(PairwiseJoinCoster(), l, r, sel, sel, fpol, jpol)
	if !choice.Left || !choice.Right {
		t.Fatalf("with equal halving selectivity both sides should filter: %+v", choice)
	}
}
