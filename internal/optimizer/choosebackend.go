package optimizer

import (
	"math"

	"repro/internal/qlang"
	"repro/internal/stats"
)

// BackendCandidate describes one routable worker backend: what it
// charges per assignment, how accurate its workers are assumed to be
// before live evidence accumulates, and which task kinds it serves.
type BackendCandidate struct {
	Name       string
	PriceCents int64
	Quality    float64
	// Kinds restricts the candidate to specific task kinds; empty
	// serves everything.
	Kinds []qlang.TaskType
}

func (c BackendCandidate) serves(tt qlang.TaskType) bool {
	if len(c.Kinds) == 0 {
		return true
	}
	for _, k := range c.Kinds {
		if k == tt {
			return true
		}
	}
	return false
}

// minBackendObs is how many finalized HITs a (backend, kind) cell needs
// before its live estimates override the candidate's configured priors.
const minBackendObs = 5

// ChooseBackend picks where one task kind's HITs should run: the
// cheapest candidate whose majority vote at the given redundancy is
// predicted to reach the target confidence — the same calculation
// ChooseAssignments runs, asked sideways. Quality and price come from
// the manager's live (or store-replayed) backend book once a cell has
// enough evidence, and from the candidate's priors until then. When no
// candidate meets the target, the highest-quality one wins: confidence
// shortfalls are redeemed by accuracy, never by price. Ties break by
// name for determinism.
func (o *Optimizer) ChooseBackend(cands []BackendCandidate, tt qlang.TaskType, assignments int) string {
	if assignments <= 0 {
		assignments = ChooseAssignments(o.WorkerAccuracy, o.TargetConfidence, o.MaxAssignments)
	}
	var book *stats.BackendBook
	if o.Mgr != nil {
		book = o.Mgr.BackendBook()
	}
	best, bestQualName := "", ""
	var bestPrice int64
	bestQual := -1.0
	for _, c := range cands {
		if !c.serves(tt) {
			continue
		}
		q, price := c.Quality, c.PriceCents
		if book != nil {
			if v, n := book.Quality(c.Name, tt.String()); n >= minBackendObs {
				q = v
			}
			if v, n := book.PriceCents(c.Name, tt.String()); n >= minBackendObs && v > 0 {
				price = int64(math.Round(v))
			}
		}
		if q > bestQual || (q == bestQual && c.Name < bestQualName) {
			bestQual, bestQualName = q, c.Name
		}
		if MajorityProb(q, assignments) < o.TargetConfidence {
			continue
		}
		if best == "" || price < bestPrice || (price == bestPrice && c.Name < best) {
			best, bestPrice = c.Name, price
		}
	}
	if best == "" {
		return bestQualName
	}
	return best
}

// BackendChooser adapts ChooseBackend to the router's chooser hook,
// resolving each task's effective redundancy from its posting policy.
func (o *Optimizer) BackendChooser(cands []BackendCandidate) func(task string, tt qlang.TaskType) string {
	return func(task string, tt qlang.TaskType) string {
		assignments := 0
		if o.Mgr != nil {
			assignments = o.Mgr.PolicyFor(&qlang.TaskDef{Name: task, Type: tt}).Assignments
		}
		return o.ChooseBackend(cands, tt, assignments)
	}
}
