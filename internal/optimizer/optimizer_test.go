package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

func TestMajorityProb(t *testing.T) {
	if got := MajorityProb(1.0, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("p=1: %v", got)
	}
	if got := MajorityProb(0.5, 3); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p=0.5 n=3: %v", got) // C(3,2)*.125 + C(3,3)*.125 = 0.5
	}
	// p=0.9, n=3: 3*0.81*0.1 + 0.729 = 0.972
	if got := MajorityProb(0.9, 3); math.Abs(got-0.972) > 1e-9 {
		t.Errorf("p=0.9 n=3: %v", got)
	}
	if got := MajorityProb(0.9, 0); got != 0 {
		t.Errorf("n=0: %v", got)
	}
}

// Property: for p>0.5, more (odd) assignments never hurt.
func TestMajorityProbMonotoneProperty(t *testing.T) {
	f := func(seed uint8) bool {
		p := 0.55 + float64(seed%40)/100
		prev := 0.0
		for n := 1; n <= 9; n += 2 {
			cur := MajorityProb(p, n)
			if cur+1e-12 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestChooseAssignments(t *testing.T) {
	if got := ChooseAssignments(0.95, 0.9, 9); got != 1 {
		t.Errorf("already confident: %d", got)
	}
	if got := ChooseAssignments(0.85, 0.95, 9); got < 3 || got%2 == 0 {
		t.Errorf("needs odd redundancy: %d", got)
	}
	if got := ChooseAssignments(0.4, 0.9, 9); got != 9 {
		t.Errorf("hopeless worker should cap: %d", got)
	}
	// Higher target needs at least as many assignments.
	lo := ChooseAssignments(0.8, 0.85, 15)
	hi := ChooseAssignments(0.8, 0.99, 15)
	if hi < lo {
		t.Errorf("target monotonicity: %d < %d", hi, lo)
	}
}

func TestChooseBatchSize(t *testing.T) {
	if got := ChooseBatchSize(0.9, 0.015, 0.85, 10); got <= 1 {
		t.Errorf("mild penalty should allow batching: %d", got)
	}
	if got := ChooseBatchSize(0.8, 0.1, 0.79, 10); got != 1 {
		t.Errorf("steep penalty: %d", got) // b=2 drops accuracy to 0.72 < 0.79
	}
	if got := ChooseBatchSize(0.86, 0.015, 0.9, 10); got != 1 {
		t.Errorf("unreachable accuracy target: %d", got)
	}
}

func TestFilterAndJoinCost(t *testing.T) {
	pol := taskmgr.Policy{Assignments: 3, BatchSize: 5, PriceCents: 2}
	if got := FilterCost(10, pol); got != 12 { // 2 HITs × 2c × 3
		t.Errorf("filter cost = %v", got)
	}
	if got := FilterCost(11, pol); got != 18 { // 3 HITs
		t.Errorf("filter cost ceil = %v", got)
	}
	if got := FilterCost(0, pol); got != 0 {
		t.Errorf("empty = %v", got)
	}
	jp := taskmgr.Policy{Assignments: 2, PriceCents: 1}
	if got := JoinCost(10, 10, 5, 5, jp); got != 8 { // 4 blocks × 1c × 2
		t.Errorf("join cost = %v", got)
	}
	if got := JoinCost(0, 10, 5, 5, jp); got != 0 {
		t.Errorf("empty join = %v", got)
	}
}

func TestDecidePreFilter(t *testing.T) {
	filterPol := taskmgr.Policy{Assignments: 1, BatchSize: 10, PriceCents: 1}
	joinPol := taskmgr.Policy{Assignments: 3, PriceCents: 2}
	// Selective filters on a big cross product: pre-filtering wins.
	plan := DecidePreFilter(100, 100, 0.2, 0.2, 5, 5, filterPol, joinPol)
	if !plan.UsePreFilter {
		t.Fatalf("selective pre-filter should win: %+v", plan)
	}
	if plan.CostWith >= plan.CostWithout {
		t.Fatalf("costs inconsistent: %+v", plan)
	}
	// Non-selective filters on a tiny join: not worth it.
	plan2 := DecidePreFilter(5, 5, 0.95, 0.95, 5, 5, filterPol, joinPol)
	if plan2.UsePreFilter {
		t.Fatalf("useless pre-filter chosen: %+v", plan2)
	}
}

// TestCostZeroPolicy is the divide-by-zero regression: a zero-valued
// Policy{} must clamp like taskmgr's effective policy does, not panic
// or produce ±Inf costs.
func TestCostZeroPolicy(t *testing.T) {
	zero := taskmgr.Policy{}
	if got := FilterCost(10, zero); got != 10 { // 10 HITs × 1c × 1 assignment
		t.Errorf("FilterCost(10, Policy{}) = %v, want 10", got)
	}
	if got := JoinCost(10, 10, 5, 5, zero); got != 4 { // 4 blocks × 1c × 1
		t.Errorf("JoinCost(10, 10, Policy{}) = %v, want 4", got)
	}
	p := DecidePreFilter(50, 50, 0.2, 0.2, 5, 5, zero, zero)
	if p.CostWith <= 0 || p.CostWithout <= 0 {
		t.Errorf("DecidePreFilter with Policy{} = %+v", p)
	}
	ps := DecidePreFilterSide(50, 50, 0.2, 5, 5, zero, zero)
	if ps.CostWith <= 0 || ps.CostWithout <= 0 {
		t.Errorf("DecidePreFilterSide with Policy{} = %+v", ps)
	}
}

func TestDecidePreFilterSide(t *testing.T) {
	filterPol := taskmgr.Policy{Assignments: 1, BatchSize: 10, PriceCents: 1}
	joinPol := taskmgr.Policy{Assignments: 3, PriceCents: 2}
	// Selective filter over one big side: filtering it pays.
	p := DecidePreFilterSide(100, 100, 0.2, 5, 5, filterPol, joinPol)
	if !p.UsePreFilter || p.CostWith >= p.CostWithout {
		t.Fatalf("selective one-sided filter should win: %+v", p)
	}
	if p.ExpectedLeft != 20 {
		t.Fatalf("expected survivors = %d", p.ExpectedLeft)
	}
	// A filter that keeps nearly everything cannot pay.
	p2 := DecidePreFilterSide(100, 100, 0.97, 5, 5, filterPol, joinPol)
	if p2.UsePreFilter {
		t.Fatalf("non-selective filter chosen: %+v", p2)
	}
}

func newOptRig(t *testing.T) (*Optimizer, *taskmgr.Manager, *qlang.Script) {
	t.Helper()
	script, err := qlang.Parse(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo

TASK isOutdoor(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Outdoors? %s", photo
  Response: YesNo

TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "CEO of %s", companyName
  Response: Form(("CEO", String), ("Phone", String))
`)
	if err != nil {
		t.Fatal(err)
	}
	clock := mturk.NewClock()
	pool := crowd.NewPool(crowd.Config{Seed: 1}, crowd.OracleFunc(
		func(task string, args []relation.Value) relation.Value { return relation.NewBool(true) }))
	market := mturk.NewMarketplace(clock, pool)
	mgr := taskmgr.New(market, cache.New(), model.NewRegistry(), budget.NewAccount(0))
	return New(mgr), mgr, script
}

func TestTunePolicies(t *testing.T) {
	o, mgr, script := newOptRig(t)
	o.TunePolicies(script)
	cat, _ := script.Task("isCat")
	pol := mgr.PolicyFor(cat)
	if pol.Assignments < 3 || pol.Assignments%2 == 0 {
		t.Errorf("filter assignments = %d", pol.Assignments)
	}
	if pol.BatchSize <= 1 {
		t.Errorf("filter batch = %d", pol.BatchSize)
	}
	ceo, _ := script.Task("findCEO")
	if mgr.PolicyFor(ceo).BatchSize != 1 {
		t.Error("free-text tasks must not batch")
	}
}

func TestFilterOrderPrefersSelectiveCheap(t *testing.T) {
	o, mgr, script := newOptRig(t)
	// Make isCat very selective (drops 90%) and isOutdoor barely
	// selective, same cost: isCat should run first.
	catDef, _ := script.Task("isCat")
	outDef, _ := script.Task("isOutdoor")
	_ = catDef
	_ = outDef
	seedSelectivity(mgr, script, "isCat", 0.1, 50)
	seedSelectivity(mgr, script, "isOutdoor", 0.9, 50)
	order := o.FilterOrder(script)([]qlang.Expr{
		mustCall(t, "isOutdoor"), mustCall(t, "isCat"),
	})
	if order[0] != 1 {
		t.Fatalf("order = %v; selective predicate should lead", order)
	}
	// Flip the selectivities: order should flip too (adaptivity).
	seedSelectivity(mgr, script, "isCat", 0.97, 2000)
	seedSelectivity(mgr, script, "isOutdoor", 0.05, 2000)
	order2 := o.FilterOrder(script)([]qlang.Expr{
		mustCall(t, "isOutdoor"), mustCall(t, "isCat"),
	})
	if order2[0] != 0 {
		t.Fatalf("order after flip = %v", order2)
	}
}

func mustCall(t *testing.T, task string) qlang.Expr {
	t.Helper()
	return &qlang.Call{Name: task, Args: []qlang.Expr{&qlang.ColumnRef{Name: "img"}}}
}

// seedSelectivity feeds synthetic observations into the manager's
// selectivity estimator via the cache+submit path being too slow for a
// unit test, so we use the public Submit path with a cache-primed
// instant outcome.
func seedSelectivity(mgr *taskmgr.Manager, script *qlang.Script, task string, sel float64, n int) {
	def, _ := script.Task(task)
	passes := int(sel * float64(n))
	for i := 0; i < n; i++ {
		args := []relation.Value{relation.NewImage(task + "-seed-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)))}
		key := cache.NewKey(def.Name, args)
		mgr.Cache().Put(key, cache.Entry{Answers: []relation.Value{relation.NewBool(i < passes)}})
		mgr.Submit(taskmgr.Request{Def: def, Args: args, Done: func(taskmgr.Outcome) {}})
	}
}

const preFilterJoinScript = `
TASK isPerson(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Does this photo show a person? %s", img
  Response: YesNo

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
  PreFilter: isPerson
`

func newPreFilterRig(t *testing.T) (*Optimizer, *taskmgr.Manager, *qlang.Script) {
	t.Helper()
	script, err := qlang.Parse(preFilterJoinScript)
	if err != nil {
		t.Fatal(err)
	}
	clock := mturk.NewClock()
	pool := crowd.NewPool(crowd.Config{Seed: 1}, crowd.OracleFunc(
		func(task string, args []relation.Value) relation.Value { return relation.NewBool(true) }))
	market := mturk.NewMarketplace(clock, pool)
	mgr := taskmgr.New(market, cache.New(), model.NewRegistry(), budget.NewAccount(0))
	return New(mgr), mgr, script
}

// TestPreFilterDeciderAdapts drives the planner hook with live
// selectivity: a selective feature filter fires the rewrite, a
// non-selective one declines it.
func TestPreFilterDeciderAdapts(t *testing.T) {
	o, mgr, script := newPreFilterRig(t)
	join, _ := script.Task("samePerson")
	filter, _ := script.Task("isPerson")
	decide := o.PreFilterDecider(5, 5)

	seedSelectivity(mgr, script, "isPerson", 0.15, 60)
	d := decide(join, filter, 100, 100)
	if !d.Left && !d.Right {
		t.Fatalf("selective filter (σ≈0.15) should fire: %+v", d)
	}

	seedSelectivity(mgr, script, "isPerson", 0.99, 4000)
	d2 := decide(join, filter, 100, 100)
	if d2.Left || d2.Right {
		t.Fatalf("non-selective filter (σ≈0.99) should decline: %+v", d2)
	}
}

// TestPreFilterKeep covers the executor's mid-query re-check: it trusts
// the plan until enough trials accumulate, then re-prices the remaining
// uncached tuples.
func TestPreFilterKeep(t *testing.T) {
	o, mgr, script := newPreFilterRig(t)
	joinDef, _ := script.Task("samePerson")
	filterDef, _ := script.Task("isPerson")
	left := relation.NewTable("l", relation.MustSchema(relation.Column{Name: "image", Kind: relation.KindImage}))
	right := relation.NewTable("r", relation.MustSchema(relation.Column{Name: "image", Kind: relation.KindImage}))
	for i := 0; i < 100; i++ {
		_ = right.InsertValues(relation.NewImage("r.png"))
	}
	j := &plan.Join{Left: &plan.Scan{Table: left}, Right: &plan.Scan{Table: right}, HumanTask: joinDef}
	pf := &plan.PreFilter{Input: j.Left, Task: filterDef, Join: j, Left: true}
	keep := o.PreFilterKeep(5, 5)

	// No trials yet: the plan-time decision stands.
	if !keep(pf, 50) {
		t.Fatal("re-check must not overturn the plan without evidence")
	}
	// Live selectivity says the filter keeps ~everything: stop paying.
	seedSelectivity(mgr, script, "isPerson", 0.97, 60)
	if keep(pf, 50) {
		t.Fatal("non-selective filter should be abandoned mid-query")
	}
	// Live selectivity says the filter drops ~everything: keep going.
	seedSelectivity(mgr, script, "isPerson", 0.05, 4000)
	if !keep(pf, 50) {
		t.Fatal("selective filter should keep filtering")
	}
	// Nothing left to submit: trivially keep.
	if !keep(pf, 0) {
		t.Fatal("remaining=0 must not flip the stage")
	}
}

func TestEstimateRemaining(t *testing.T) {
	o, mgr, script := newOptRig(t)
	def, _ := script.Task("isCat")
	mgr.SetPolicy(def.Name, taskmgr.Policy{Assignments: 3, BatchSize: 5, PriceCents: 1, UseCache: true})
	if got := o.EstimateRemaining(def, 25); got != 15 { // 5 HITs × 1c × 3
		t.Fatalf("estimate = %v", got)
	}
}
