package optimizer

import (
	"math"

	"repro/internal/budget"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/rank"
	"repro/internal/taskmgr"
)

// RankPlan is the priced three-way sort decision: what each strategy
// would cost for n items, which strategies are predicted to meet the
// quality target, and the pick.
type RankPlan struct {
	Strategy  rank.Strategy
	GroupSize int
	// CostRate / CostCompare / CostHybrid are the predicted spends; a
	// strategy the task definitions make impossible (no rating surface,
	// no comparison companion) carries 0 and Eligible* false.
	CostRate, CostCompare, CostHybrid budget.Cents
	EligibleRate, EligibleCompare     bool
	// RateMeetsTarget predicts whether rating agreement alone resolves
	// the order to the optimizer's TargetConfidence; when false the
	// rating sort is only chosen for lack of a comparison companion.
	RateMeetsTarget bool
}

// ChooseRankStrategy prices the three ORDER BY strategies from the
// task policies and live statistics and picks the cheapest one that is
// predicted to meet the quality policy (paper §2's optimization
// function, extended to the sort operator):
//
//   - Rate costs ⌈n/batch⌉ rating HITs but only meets the target when
//     the task's observed answer agreement reaches TargetConfidence —
//     noisy ratings leave adjacent items unresolved.
//   - Compare costs CompareHITCount(n, S, topK) comparison HITs
//     (all-pairs coverage, or the top-k tournament under LIMIT
//     pushdown) and always meets the target: it measures exactly the
//     pairwise relation the sort needs.
//   - Hybrid pays the rating pass plus comparison refinement over the
//     fraction of items the ratings are predicted to leave ambiguous,
//     estimated from the comparison task's pairwise-agreement history
//     (live or replayed from the knowledge store via KindRankPair
//     records) with WorkerAccuracy as the prior.
//
// rateDef may be nil (pure Rank task: compare only) and cmpDef may be
// nil (no comparison companion: rate only); with both nil the zero
// plan defaults to rating.
func (o *Optimizer) ChooseRankStrategy(rateDef, cmpDef *qlang.TaskDef, n, topK int) RankPlan {
	p := RankPlan{
		Strategy:        rank.StrategyRate,
		GroupSize:       rank.GroupSizeFor(rateDef, cmpDef),
		EligibleRate:    rateDef != nil && rateDef.Type == qlang.TaskRating,
		EligibleCompare: cmpDef != nil,
	}
	if p.EligibleRate {
		pol := o.Mgr.PolicyFor(rateDef).Clamped()
		p.CostRate = perHITCost(pol) * budget.Cents(rank.RateHITCount(n, pol.BatchSize))
		agr := o.Mgr.StatsFor(rateDef.Name).MeanAgreement
		p.RateMeetsTarget = agr >= o.TargetConfidence
	}
	if p.EligibleCompare {
		cmpPol := o.Mgr.PolicyFor(cmpDef).Clamped()
		p.CostCompare = perHITCost(cmpPol) * budget.Cents(rank.CompareHITCount(n, p.GroupSize, topK))
		if p.EligibleRate {
			refine := o.refineHITEstimate(cmpDef, n, topK, p.GroupSize)
			p.CostHybrid = p.CostRate + perHITCost(cmpPol)*budget.Cents(refine)
		}
	}

	// Pick the cheapest strategy that meets the target; if none does
	// (rate-only plans under a noisy crowd), the cheapest eligible one.
	best := budget.Cents(math.MaxInt64)
	consider := func(s rank.Strategy, cost budget.Cents, eligible, meets bool) {
		if eligible && meets && cost < best {
			p.Strategy, best = s, cost
		}
	}
	consider(rank.StrategyRate, p.CostRate, p.EligibleRate, p.RateMeetsTarget)
	consider(rank.StrategyCompare, p.CostCompare, p.EligibleCompare, true)
	consider(rank.StrategyHybrid, p.CostHybrid, p.EligibleRate && p.EligibleCompare, true)
	if best == math.MaxInt64 {
		consider(rank.StrategyRate, p.CostRate, p.EligibleRate, true)
	}
	return p
}

// refineHITEstimate is the hybrid's comparison-refinement price: the
// fraction of items ratings are predicted to leave ambiguous, packed
// into half-group comparison HITs. The uncertainty comes from the
// comparison task's observed pairwise agreement a (majority share,
// 0.5 = coin flip): u = 2·(1−a), the classic inversion-rate reading,
// floored at 5% so a perfect history still budgets for exact ties.
func (o *Optimizer) refineHITEstimate(cmpDef *qlang.TaskDef, n, topK, groupSize int) int {
	a, trials := o.Mgr.RankAgreement(cmpDef.Name)
	if trials == 0 {
		a = o.WorkerAccuracy
	}
	u := 2 * (1 - a)
	if u < 0.05 {
		u = 0.05
	}
	if u > 1 {
		u = 1
	}
	uncertain := int(math.Ceil(u * float64(n)))
	if topK > 0 && uncertain > 2*topK {
		// Only windows intersecting the top k are refined.
		uncertain = 2 * topK
	}
	half := groupSize / 2
	if half < 1 {
		half = 1
	}
	return (uncertain + half - 1) / half
}

func perHITCost(pol taskmgr.Policy) budget.Cents {
	return budget.Cents(pol.PriceCents * int64(pol.Assignments))
}

// RankChooser returns the executor hook (exec.Config.RankStrategy)
// that resolves every Rank node's strategy at runtime cardinality
// through ChooseRankStrategy.
func (o *Optimizer) RankChooser() func(v *plan.Rank, n int) rank.Decision {
	return func(v *plan.Rank, n int) rank.Decision {
		rateDef := v.Task
		if rateDef != nil && rateDef.Type != qlang.TaskRating {
			rateDef = nil
		}
		p := o.ChooseRankStrategy(rateDef, v.Compare, n, v.TopK)
		return rank.Decision{
			Strategy:  p.Strategy,
			GroupSize: p.GroupSize,
			TopK:      v.TopK,
			Desc:      v.Desc,
		}
	}
}

// compile-time check that the hook type matches the executor's.
var _ func(*plan.Rank, int) rank.Decision = exec.Config{}.RankStrategy
