package cache

import (
	"sync"
	"testing"

	"repro/internal/relation"
)

func key(task, arg string) Key {
	return NewKey(task, []relation.Value{relation.NewString(arg)})
}

func TestNewKeyCanonical(t *testing.T) {
	a := NewKey("findCEO", []relation.Value{relation.NewString("Acme")})
	b := NewKey("findCEO", []relation.Value{relation.NewString("Acme")})
	if a != b {
		t.Fatal("identical invocations must share a key")
	}
	c := NewKey("findCEO", []relation.Value{relation.NewString("Globex")})
	if a == c {
		t.Fatal("different args must differ")
	}
	d := NewKey("findCFO", []relation.Value{relation.NewString("Acme")})
	if a == d {
		t.Fatal("different tasks must differ")
	}
	// Multi-arg boundaries must not collide.
	e := NewKey("t", []relation.Value{relation.NewString("ab"), relation.NewString("c")})
	f := NewKey("t", []relation.Value{relation.NewString("a"), relation.NewString("bc")})
	if e == f {
		t.Fatal("argument boundaries collided")
	}
}

func TestGetPutAppend(t *testing.T) {
	c := New()
	k := key("findCEO", "Acme")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, Entry{Answers: []relation.Value{relation.NewString("Ada")}})
	e, ok := c.Get(k)
	if !ok || len(e.Answers) != 1 || e.Answers[0].Str() != "Ada" {
		t.Fatalf("get = %v ok=%v", e, ok)
	}
	c.Append(k, relation.NewString("Ada"))
	e, _ = c.Get(k)
	if len(e.Answers) != 2 {
		t.Fatalf("append: %d answers", len(e.Answers))
	}
	// Append on a fresh key creates it.
	k2 := key("findCEO", "Globex")
	c.Append(k2, relation.NewString("Grace"))
	if e, ok := c.Get(k2); !ok || len(e.Answers) != 1 {
		t.Fatalf("append-create = %v ok=%v", e, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutCopiesAnswers(t *testing.T) {
	c := New()
	answers := []relation.Value{relation.NewString("x")}
	c.Put(key("t", "a"), Entry{Answers: answers})
	answers[0] = relation.NewString("mutated")
	e, _ := c.Peek(key("t", "a"))
	if e.Answers[0].Str() != "x" {
		t.Fatal("Put must copy the answer slice")
	}
}

func TestGetPeekReturnCopies(t *testing.T) {
	c := New()
	k := key("isCat", "a.png")
	c.Put(k, Entry{Answers: []relation.Value{relation.NewBool(true), relation.NewBool(true)}})

	// Overwriting an element of the returned slice must not reach the
	// cached entry.
	e, _ := c.Get(k)
	e.Answers[0] = relation.NewBool(false)
	if got, _ := c.Peek(k); !got.Answers[0].Truthy() {
		t.Fatal("mutating Get's slice corrupted the cached answers")
	}

	// Appending to the returned slice and then letting the cache Append
	// must not publish the caller's value into the cached entry (the
	// two appends would otherwise race for the same backing slot).
	e, _ = c.Get(k)
	_ = append(e.Answers, relation.NewString("caller junk"))
	c.Append(k, relation.NewBool(true))
	got, _ := c.Peek(k)
	if len(got.Answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(got.Answers))
	}
	for i, a := range got.Answers {
		if a.Kind() != relation.KindBool {
			t.Fatalf("answer %d = %v; caller append leaked into the cache", i, a)
		}
	}

	// Peek must copy too: the optimizer probes with it while HITs
	// finalize concurrently.
	p, _ := c.Peek(k)
	p.Answers[1] = relation.Null
	if got, _ := c.Peek(k); got.Answers[1].IsNull() {
		t.Fatal("mutating Peek's slice corrupted the cached answers")
	}
}

func TestStatsCounters(t *testing.T) {
	c := New()
	k := key("t", "a")
	c.Get(k) // miss
	// Three assignments' answers behind one key: a single lookup hit
	// serves all three would-be paid answers.
	c.Put(k, Entry{Answers: []relation.Value{
		relation.NewBool(true), relation.NewBool(true), relation.NewBool(false),
	}})
	c.Get(k)               // hit: 3 answers served
	c.Get(k)               // hit: 3 more
	c.Peek(k)              // peek: not counted
	c.Peek(key("t", "zz")) // peek miss: not counted
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SavedQuestions != 6 {
		t.Fatalf("SavedQuestions = %d; want answers served (2 hits × 3 answers), not lookups", s.SavedQuestions)
	}
	c.Clear()
	s = c.Stats()
	if s.Hits != 0 || s.Entries != 0 || s.SavedQuestions != 0 {
		t.Fatalf("after clear = %+v", s)
	}
}

func TestExportSortedCopies(t *testing.T) {
	c := New()
	c.Put(key("findCEO", "Acme"), Entry{Answers: []relation.Value{
		relation.NewTuple(relation.Field{Name: "CEO", Value: relation.NewString("Ada")}),
	}})
	c.Put(key("isCat", "x.png"), Entry{Answers: []relation.Value{relation.NewBool(true)}})
	c.Put(key("findCEO", "Globex"), Entry{Answers: []relation.Value{relation.NewString("Grace")}})
	exp := c.Export()
	if len(exp) != 3 {
		t.Fatalf("exported %d entries", len(exp))
	}
	for i := 1; i < len(exp); i++ {
		prev, cur := exp[i-1].Key, exp[i].Key
		if prev.Task > cur.Task || (prev.Task == cur.Task && prev.Args >= cur.Args) {
			t.Fatalf("export not sorted: %v before %v", prev, cur)
		}
	}
	// Mutating the export must not reach the cache.
	exp[0].Answers[0] = relation.Null
	if e, _ := c.Peek(exp[0].Key); e.Answers[0].IsNull() {
		t.Fatal("Export must copy answer slices")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key("t", string(rune('a'+i%7)))
				if i%3 == 0 {
					c.Append(k, relation.NewInt(int64(i)))
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("no entries after concurrent writes")
	}
}
