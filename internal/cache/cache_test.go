package cache

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/relation"
)

func key(task, arg string) Key {
	return NewKey(task, []relation.Value{relation.NewString(arg)})
}

func TestNewKeyCanonical(t *testing.T) {
	a := NewKey("findCEO", []relation.Value{relation.NewString("Acme")})
	b := NewKey("findCEO", []relation.Value{relation.NewString("Acme")})
	if a != b {
		t.Fatal("identical invocations must share a key")
	}
	c := NewKey("findCEO", []relation.Value{relation.NewString("Globex")})
	if a == c {
		t.Fatal("different args must differ")
	}
	d := NewKey("findCFO", []relation.Value{relation.NewString("Acme")})
	if a == d {
		t.Fatal("different tasks must differ")
	}
	// Multi-arg boundaries must not collide.
	e := NewKey("t", []relation.Value{relation.NewString("ab"), relation.NewString("c")})
	f := NewKey("t", []relation.Value{relation.NewString("a"), relation.NewString("bc")})
	if e == f {
		t.Fatal("argument boundaries collided")
	}
}

func TestGetPutAppend(t *testing.T) {
	c := New()
	k := key("findCEO", "Acme")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, Entry{Answers: []relation.Value{relation.NewString("Ada")}})
	e, ok := c.Get(k)
	if !ok || len(e.Answers) != 1 || e.Answers[0].Str() != "Ada" {
		t.Fatalf("get = %v ok=%v", e, ok)
	}
	c.Append(k, relation.NewString("Ada"))
	e, _ = c.Get(k)
	if len(e.Answers) != 2 {
		t.Fatalf("append: %d answers", len(e.Answers))
	}
	// Append on a fresh key creates it.
	k2 := key("findCEO", "Globex")
	c.Append(k2, relation.NewString("Grace"))
	if e, ok := c.Get(k2); !ok || len(e.Answers) != 1 {
		t.Fatalf("append-create = %v ok=%v", e, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutCopiesAnswers(t *testing.T) {
	c := New()
	answers := []relation.Value{relation.NewString("x")}
	c.Put(key("t", "a"), Entry{Answers: answers})
	answers[0] = relation.NewString("mutated")
	e, _ := c.Peek(key("t", "a"))
	if e.Answers[0].Str() != "x" {
		t.Fatal("Put must copy the answer slice")
	}
}

func TestStatsCounters(t *testing.T) {
	c := New()
	k := key("t", "a")
	c.Get(k)               // miss
	c.Put(k, Entry{})      // store
	c.Get(k)               // hit
	c.Peek(key("t", "zz")) // peek: not counted
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.SavedQuestions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	c.Clear()
	s = c.Stats()
	if s.Hits != 0 || s.Entries != 0 {
		t.Fatalf("after clear = %+v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New()
	c.Put(key("findCEO", "Acme"), Entry{Answers: []relation.Value{
		relation.NewTuple(relation.Field{Name: "CEO", Value: relation.NewString("Ada")}),
		relation.NewTuple(relation.Field{Name: "CEO", Value: relation.NewString("Ada")}),
	}})
	c.Put(key("isCat", "x.png"), Entry{Answers: []relation.Value{relation.NewBool(true)}})
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := New()
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 {
		t.Fatalf("loaded %d entries", c2.Len())
	}
	e, ok := c2.Peek(key("findCEO", "Acme"))
	if !ok || len(e.Answers) != 2 || e.Answers[0].Field("CEO").Str() != "Ada" {
		t.Fatalf("loaded entry = %v ok=%v", e, ok)
	}
}

func TestLoadGarbage(t *testing.T) {
	c := New()
	if err := c.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage load must error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.gob")
	c := New()
	c.Put(key("t", "a"), Entry{Answers: []relation.Value{relation.NewInt(1)}})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2 := New()
	if err := c2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("loaded %d", c2.Len())
	}
	// Missing file is a cold start, not an error.
	c3 := New()
	if err := c3.LoadFile(filepath.Join(dir, "missing.gob")); err != nil {
		t.Fatal(err)
	}
	if c3.Len() != 0 {
		t.Fatal("missing file should load nothing")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key("t", string(rune('a'+i%7)))
				if i%3 == 0 {
					c.Append(k, relation.NewInt(int64(i)))
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("no entries after concurrent writes")
	}
}
