// Package cache implements Qurk's Task Cache: a memo of completed
// (task, arguments) → answers entries. The paper: "We cache a given
// result to be used in several places (even possibly in different
// queries)." A hit costs $0 and zero HITs; the dashboard reports the
// savings. Entries persist across processes via gob.
package cache

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/relation"
)

// Key identifies a cached task application.
type Key struct {
	Task string
	Args string // canonical encoding of the argument values
}

// NewKey canonicalizes a task invocation.
func NewKey(task string, args []relation.Value) Key {
	var enc []byte
	for _, a := range args {
		enc = a.Encode(enc)
	}
	return Key{Task: task, Args: string(enc)}
}

// Entry is the cached outcome: every assignment's answer, so callers can
// re-reduce with any aggregate.
type Entry struct {
	Answers []relation.Value
}

// Stats summarizes cache effectiveness for the dashboard.
type Stats struct {
	Entries int
	Hits    int64
	Misses  int64
	// SavedQuestions counts answers served from cache instead of being
	// paid for — the basis of the dashboard's "caching benefit". One
	// lookup hit serves the whole stored answer list (every assignment
	// that would otherwise be re-posted), so this is the sum of answer
	// counts over hits, not the hit count.
	SavedQuestions int64
}

// Cache is a concurrency-safe task cache.
type Cache struct {
	mu            sync.Mutex
	entries       map[Key]Entry
	hits          int64
	misses        int64
	answersServed int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]Entry)}
}

// Get looks up answers for a task application; ok is false on miss.
// The returned Entry is a copy: mutating it never corrupts the cache.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		c.answersServed += int64(len(e.Answers))
	} else {
		c.misses++
	}
	return e.copied(), ok
}

// Peek is Get without touching the hit/miss counters (used by the
// dashboard and the optimizer when probing). Like Get it returns a copy.
func (c *Cache) Peek(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e.copied(), ok
}

// Contains reports whether the key has a non-empty answer set, without
// touching the hit/miss counters or copying the answers — the cheap
// probe for callers that only need existence (e.g. the executor
// counting a pre-filter stage's uncached work).
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries[key].Answers) > 0
}

// copied returns an Entry whose Answers slice is independent of the
// cache's own. Readers may append to or overwrite what they get back,
// and Append may grow the live slice, without either seeing the other.
func (e Entry) copied() Entry {
	if e.Answers == nil {
		return e
	}
	return Entry{Answers: append([]relation.Value(nil), e.Answers...)}
}

// Put stores the complete answer set for a task application,
// overwriting any previous entry.
func (c *Cache) Put(key Key, e Entry) {
	cp := Entry{Answers: append([]relation.Value(nil), e.Answers...)}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cp
}

// Append adds one more assignment's answer to an existing entry
// (creating it if needed), so redundancy accumulated across queries
// keeps improving confidence.
func (c *Cache) Append(key Key, answer relation.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	e.Answers = append(e.Answers, answer)
	c.entries[key] = e
}

// Len returns the number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, SavedQuestions: c.answersServed}
}

// Clear drops all entries and counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]Entry)
	c.hits, c.misses, c.answersServed = 0, 0, 0
}

// persistedEntry is the gob wire format.
type persistedEntry struct {
	Task    string
	Args    string
	Answers []relation.Value
}

// Save writes the cache contents to w as a gob stream.
func (c *Cache) Save(w io.Writer) error {
	c.mu.Lock()
	flat := make([]persistedEntry, 0, len(c.entries))
	for k, e := range c.entries {
		flat = append(flat, persistedEntry{Task: k.Task, Args: k.Args, Answers: e.copied().Answers})
	}
	c.mu.Unlock()
	return gob.NewEncoder(w).Encode(flat)
}

// Load merges entries from a gob stream produced by Save. Existing keys
// are overwritten.
func (c *Cache) Load(r io.Reader) error {
	var flat []persistedEntry
	if err := gob.NewDecoder(r).Decode(&flat); err != nil {
		return fmt.Errorf("cache: load: %v", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pe := range flat {
		c.entries[Key{Task: pe.Task, Args: pe.Args}] = Entry{Answers: pe.Answers}
	}
	return nil
}

// SaveFile persists the cache to path (atomic via rename).
func (c *Cache) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile merges entries from a file written by SaveFile. A missing
// file is not an error: a cold cache is valid.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}
