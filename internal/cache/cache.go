// Package cache implements Qurk's Task Cache: a memo of completed
// (task, arguments) → answers entries. The paper: "We cache a given
// result to be used in several places (even possibly in different
// queries)." A hit costs $0 and zero HITs; the dashboard reports the
// savings. Entries persist across processes through the durable
// knowledge store (internal/store), which streams cache records to its
// WAL and replays them at engine start.
package cache

import (
	"sort"
	"sync"

	"repro/internal/relation"
)

// Key identifies a cached task application.
type Key struct {
	Task string
	Args string // canonical encoding of the argument values
}

// NewKey canonicalizes a task invocation.
func NewKey(task string, args []relation.Value) Key {
	var enc []byte
	for _, a := range args {
		enc = a.Encode(enc)
	}
	return Key{Task: task, Args: string(enc)}
}

// Entry is the cached outcome: every assignment's answer, so callers can
// re-reduce with any aggregate.
type Entry struct {
	Answers []relation.Value
}

// Stats summarizes cache effectiveness for the dashboard.
type Stats struct {
	Entries int
	Hits    int64
	Misses  int64
	// SavedQuestions counts answers served from cache instead of being
	// paid for — the basis of the dashboard's "caching benefit". One
	// lookup hit serves the whole stored answer list (every assignment
	// that would otherwise be re-posted), so this is the sum of answer
	// counts over hits, not the hit count.
	SavedQuestions int64
}

// Cache is a concurrency-safe task cache.
type Cache struct {
	mu            sync.Mutex
	entries       map[Key]Entry
	hits          int64
	misses        int64
	answersServed int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]Entry)}
}

// Get looks up answers for a task application; ok is false on miss.
// The returned Entry is a copy: mutating it never corrupts the cache.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		c.answersServed += int64(len(e.Answers))
	} else {
		c.misses++
	}
	return e.copied(), ok
}

// Peek is Get without touching the hit/miss counters (used by the
// dashboard and the optimizer when probing). Like Get it returns a copy.
func (c *Cache) Peek(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e.copied(), ok
}

// Contains reports whether the key has a non-empty answer set, without
// touching the hit/miss counters or copying the answers — the cheap
// probe for callers that only need existence (e.g. the executor
// counting a pre-filter stage's uncached work).
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries[key].Answers) > 0
}

// copied returns an Entry whose Answers slice is independent of the
// cache's own. Readers may append to or overwrite what they get back,
// and Append may grow the live slice, without either seeing the other.
func (e Entry) copied() Entry {
	if e.Answers == nil {
		return e
	}
	return Entry{Answers: append([]relation.Value(nil), e.Answers...)}
}

// Put stores the complete answer set for a task application,
// overwriting any previous entry.
func (c *Cache) Put(key Key, e Entry) {
	cp := Entry{Answers: append([]relation.Value(nil), e.Answers...)}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cp
}

// Append adds one more assignment's answer to an existing entry
// (creating it if needed), so redundancy accumulated across queries
// keeps improving confidence.
func (c *Cache) Append(key Key, answer relation.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	e.Answers = append(e.Answers, answer)
	c.entries[key] = e
}

// Len returns the number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, SavedQuestions: c.answersServed}
}

// Clear drops all entries and counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]Entry)
	c.hits, c.misses, c.answersServed = 0, 0, 0
}

// Exported is one entry with its key, handed to persistence layers.
type Exported struct {
	Key     Key
	Answers []relation.Value
}

// Export returns a copy of every entry sorted by key, so persistence
// layers (internal/store) emit deterministic files.
func (c *Cache) Export() []Exported {
	c.mu.Lock()
	flat := make([]Exported, 0, len(c.entries))
	for k, e := range c.entries {
		flat = append(flat, Exported{Key: k, Answers: e.copied().Answers})
	}
	c.mu.Unlock()
	sort.Slice(flat, func(i, j int) bool {
		if flat[i].Key.Task != flat[j].Key.Task {
			return flat[i].Key.Task < flat[j].Key.Task
		}
		return flat[i].Key.Args < flat[j].Key.Args
	})
	return flat
}
