package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "Null", KindString: "String", KindInt: "Int",
		KindFloat: "Float", KindBool: "Bool", KindImage: "Image",
		KindList: "List", KindTuple: "Tuple",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"String", KindString, true},
		{"string", KindString, true},
		{"Text", KindString, true},
		{"Int", KindInt, true},
		{"Integer", KindInt, true},
		{"Float", KindFloat, true},
		{"double", KindFloat, true},
		{"Bool", KindBool, true},
		{"Boolean", KindBool, true},
		{"Image", KindImage, true},
		{"Image[]", KindList, true},
		{"String[]", KindList, true},
		{"Tuple", KindTuple, true},
		{"Null", KindNull, true},
		{"Widget", KindNull, false},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseKind(%q): unexpected error %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseKind(%q): expected error", c.in)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseKind(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewString("hi"); v.Kind() != KindString || v.Str() != "hi" {
		t.Errorf("NewString: %v", v)
	}
	if v := NewInt(-7); v.Kind() != KindInt || v.Int() != -7 || v.Float() != -7 {
		t.Errorf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 || v.Int() != 2 {
		t.Errorf("NewFloat: %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool: %v", v)
	}
	if v := NewImage("x.png"); v.Kind() != KindImage || v.Str() != "x.png" {
		t.Errorf("NewImage: %v", v)
	}
	lst := NewList(NewInt(1), NewInt(2))
	if lst.Len() != 2 || lst.List()[1].Int() != 2 {
		t.Errorf("NewList: %v", lst)
	}
}

func TestNewListCopies(t *testing.T) {
	src := []Value{NewInt(1)}
	v := NewList(src...)
	src[0] = NewInt(99)
	if v.List()[0].Int() != 1 {
		t.Error("NewList must copy its input slice")
	}
}

func TestTupleValueFieldLookup(t *testing.T) {
	v := NewTuple(
		Field{Name: "Phone", Value: NewString("555")},
		Field{Name: "CEO", Value: NewString("Ada")},
	)
	if got := v.Field("CEO").Str(); got != "Ada" {
		t.Errorf("Field(CEO) = %q", got)
	}
	if got := v.Field("Phone").Str(); got != "555" {
		t.Errorf("Field(Phone) = %q", got)
	}
	if !v.Field("Missing").IsNull() {
		t.Error("missing field should be NULL")
	}
	// Fields are sorted by name for canonical encoding.
	fs := v.Fields()
	if fs[0].Name != "CEO" || fs[1].Name != "Phone" {
		t.Errorf("fields not sorted: %v", fs)
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{NewBool(true), true},
		{NewBool(false), false},
		{NewInt(0), false},
		{NewInt(3), true},
		{NewFloat(0), false},
		{NewFloat(0.1), true},
		{NewString(""), false},
		{NewString("x"), true},
		{NewImage("i"), true},
		{NewList(NewBool(true), NewBool(true), NewBool(false)), true},
		{NewList(NewBool(true), NewBool(false)), false}, // tie -> false
		{NewList(), false},
		{NewTuple(), false},
	}
	for i, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Errorf("case %d: Truthy(%v) = %v, want %v", i, c.v, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(2.5), NewInt(3), -1},
		{NewFloat(1), NewInt(1), 0}, // numeric cross-kind equality
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewList(NewInt(1)), NewList(NewInt(1), NewInt(2)), -1},
		{NewList(NewInt(2)), NewList(NewInt(1), NewInt(5)), 1},
		{NewString("x"), NewImage("x"), -1}, // different kinds order by kind
	}
	for i, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, want sign %d", i, c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestEqualStrictKind(t *testing.T) {
	if NewInt(1).Equal(NewFloat(1)) {
		t.Error("Equal must be kind-strict; Compare is the numeric one")
	}
	if !NewInt(1).Equal(NewInt(1)) {
		t.Error("identical ints must be Equal")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewString("s"), "s"},
		{NewImage("pic"), "img:pic"},
		{NewInt(42), "42"},
		{NewFloat(1.5), "1.5"},
		{NewBool(true), "true"},
		{NewList(NewInt(1), NewString("a")), "[1, a]"},
		{NewTuple(Field{"a", NewInt(1)}, Field{"b", NewString("x")}), "(a: 1, b: x)"},
	}
	for i, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("case %d: String() = %q, want %q", i, got, c.want)
		}
	}
}

// randomValue builds an arbitrary Value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(8)
	if depth <= 0 && (k == int(KindList) || k == int(KindTuple)) {
		k = int(KindInt)
	}
	switch Kind(k) {
	case KindNull:
		return Null
	case KindString:
		return NewString(randomWord(r))
	case KindInt:
		return NewInt(int64(r.Intn(2000) - 1000))
	case KindFloat:
		return NewFloat(float64(r.Intn(2000)-1000) / 8)
	case KindBool:
		return NewBool(r.Intn(2) == 0)
	case KindImage:
		return NewImage(randomWord(r))
	case KindList:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return NewList(elems...)
	default:
		n := r.Intn(3)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{Name: string(rune('a' + i)), Value: randomValue(r, depth-1)}
		}
		return NewTuple(fields...)
	}
}

func randomWord(r *rand.Rand) string {
	n := r.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(26)))
	}
	return b.String()
}

// Property: Encode is injective w.r.t. Compare equality, and
// self-comparison is always 0.
func TestEncodeInjectiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seedA, seedB int64) bool {
		a := randomValue(rand.New(rand.NewSource(seedA)), 3)
		b := randomValue(rand.New(rand.NewSource(seedB)), 3)
		sameEnc := a.EncodeKey() == b.EncodeKey()
		if a.Equal(b) != sameEnc && a.Kind() == b.Kind() {
			// Same kind: encoding equality must coincide with Equal.
			t.Logf("a=%v b=%v equal=%v enc=%v", a, b, a.Equal(b), sameEnc)
			return false
		}
		if a.Compare(a) != 0 {
			return false
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and reflexive.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomValue(rand.New(rand.NewSource(seedA)), 3)
		b := randomValue(rand.New(rand.NewSource(seedB)), 3)
		return sign(a.Compare(b)) == -sign(b.Compare(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: for totally random triples, Compare is transitive in the <= sense.
func TestCompareTransitiveProperty(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a := randomValue(rand.New(rand.NewSource(sa)), 2)
		b := randomValue(rand.New(rand.NewSource(sb)), 2)
		c := randomValue(rand.New(rand.NewSource(sc)), 2)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []struct {
		kind Kind
		text string
		want Value
	}{
		{KindString, "hello", NewString("hello")},
		{KindImage, "a.png", NewImage("a.png")},
		{KindInt, " 42 ", NewInt(42)},
		{KindFloat, "2.5", NewFloat(2.5)},
		{KindBool, "true", NewBool(true)},
		{KindBool, "FALSE", NewBool(false)},
		{KindNull, "whatever", Null},
	}
	for _, c := range cases {
		got, err := ParseValue(c.kind, c.text)
		if err != nil {
			t.Errorf("ParseValue(%v,%q): %v", c.kind, c.text, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseValue(%v,%q) = %v, want %v", c.kind, c.text, got, c.want)
		}
	}
	if _, err := ParseValue(KindInt, "xx"); err == nil {
		t.Error("expected error for bad int")
	}
	if _, err := ParseValue(KindFloat, "xx"); err == nil {
		t.Error("expected error for bad float")
	}
	if _, err := ParseValue(KindBool, "xx"); err == nil {
		t.Error("expected error for bad bool")
	}
	if _, err := ParseValue(KindList, "1,2"); err == nil {
		t.Error("expected error for unparseable kind")
	}
}

func TestEncodeDistinguishesShapes(t *testing.T) {
	// Classic injectivity traps: concatenation ambiguity.
	a := NewList(NewString("ab"), NewString("c"))
	b := NewList(NewString("a"), NewString("bc"))
	if a.EncodeKey() == b.EncodeKey() {
		t.Error("list encodings collide across element boundaries")
	}
	c := NewString("12")
	d := NewInt(12)
	if c.EncodeKey() == d.EncodeKey() {
		t.Error("string/int encodings collide")
	}
}
