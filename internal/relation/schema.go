package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	// Name is the attribute name, optionally qualified ("table.attr").
	Name string
	// Kind is the attribute's type.
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	cols  []Column
	index map[string]int // lower-cased name -> position
}

// NewSchema builds a schema from the given columns. Duplicate names are an
// error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{
		cols:  append([]Column(nil), cols...),
		index: make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns the columns in order. Callers must not mutate the slice.
func (s *Schema) Columns() []Column { return s.cols }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Lookup finds a column by name, case-insensitively. It accepts both
// qualified ("t.a") and bare ("a") forms: a bare query matches a qualified
// column when exactly one column's base name matches.
func (s *Schema) Lookup(name string) (int, bool) {
	key := strings.ToLower(name)
	if i, ok := s.index[key]; ok {
		return i, true
	}
	// Bare name against qualified columns.
	if !strings.Contains(key, ".") {
		found, at := 0, -1
		for i, c := range s.cols {
			base := strings.ToLower(c.Name)
			if dot := strings.LastIndex(base, "."); dot >= 0 {
				base = base[dot+1:]
			}
			if base == key {
				found++
				at = i
			}
		}
		if found == 1 {
			return at, true
		}
		return -1, false
	}
	return -1, false
}

// Qualify returns a copy of the schema with every bare column name
// prefixed by the given table alias.
func (s *Schema) Qualify(alias string) *Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		name := c.Name
		if dot := strings.LastIndex(name, "."); dot >= 0 {
			name = name[dot+1:]
		}
		cols[i] = Column{Name: alias + "." + name, Kind: c.Kind}
	}
	return MustSchema(cols...)
}

// Concat returns a schema holding s's columns followed by o's.
func (s *Schema) Concat(o *Schema) (*Schema, error) {
	return NewSchema(append(append([]Column(nil), s.cols...), o.cols...)...)
}

// String renders the schema as "(a String, b Int)".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row: a slice of values positionally aligned with a schema.
// Tuples are treated as immutable after construction.
type Tuple struct {
	Schema *Schema
	Values []Value
}

// NewTuple pairs values with a schema, checking arity.
func NewTupleRow(s *Schema, values ...Value) (Tuple, error) {
	if len(values) != s.Len() {
		return Tuple{}, fmt.Errorf("relation: tuple arity %d != schema arity %d", len(values), s.Len())
	}
	return Tuple{Schema: s, Values: append([]Value(nil), values...)}, nil
}

// MustTuple is NewTupleRow that panics on error.
func MustTuple(s *Schema, values ...Value) Tuple {
	t, err := NewTupleRow(s, values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Get returns the named attribute's value, or NULL when absent.
func (t Tuple) Get(name string) Value {
	if t.Schema == nil {
		return Null
	}
	if i, ok := t.Schema.Lookup(name); ok {
		return t.Values[i]
	}
	return Null
}

// Has reports whether the named attribute exists.
func (t Tuple) Has(name string) bool {
	if t.Schema == nil {
		return false
	}
	_, ok := t.Schema.Lookup(name)
	return ok
}

// Join concatenates two tuples under a combined schema.
func (t Tuple) Join(o Tuple) (Tuple, error) {
	s, err := t.Schema.Concat(o.Schema)
	if err != nil {
		return Tuple{}, err
	}
	vals := make([]Value, 0, len(t.Values)+len(o.Values))
	vals = append(vals, t.Values...)
	vals = append(vals, o.Values...)
	return Tuple{Schema: s, Values: vals}, nil
}

// EncodeKey returns a canonical key for the whole tuple.
func (t Tuple) EncodeKey() string {
	var b []byte
	for _, v := range t.Values {
		b = v.Encode(b)
	}
	return string(b)
}

// String renders the tuple as "{a: x, b: y}".
func (t Tuple) String() string {
	if t.Schema == nil {
		return "{}"
	}
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = t.Schema.Column(i).Name + ": " + v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
