package relation

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `name:String,age:Int,score:Float,active:Bool,photo:Image
ann,30,1.5,true,ann.png
bob,40,2.5,false,bob.png
carol,,,,
`

func TestLoadCSVTyped(t *testing.T) {
	tab, err := LoadCSV("people", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d", tab.Len())
	}
	s := tab.Schema()
	wantKinds := []Kind{KindString, KindInt, KindFloat, KindBool, KindImage}
	for i, k := range wantKinds {
		if s.Column(i).Kind != k {
			t.Errorf("col %d kind = %v, want %v", i, s.Column(i).Kind, k)
		}
	}
	r0 := tab.Row(0)
	if r0.Get("age").Int() != 30 || r0.Get("score").Float() != 1.5 || !r0.Get("active").Bool() {
		t.Errorf("row0 = %v", r0)
	}
	r2 := tab.Row(2)
	if !r2.Get("age").IsNull() || !r2.Get("photo").IsNull() {
		t.Errorf("empty cells must be NULL: %v", r2)
	}
}

func TestLoadCSVDefaultString(t *testing.T) {
	tab, err := LoadCSV("t", strings.NewReader("a,b\n1,x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema().Column(0).Kind != KindString {
		t.Error("untyped column must default to String")
	}
	if tab.Row(0).Get("a").Str() != "1" {
		t.Error("value should stay textual")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input must error")
	}
	if _, err := LoadCSV("t", strings.NewReader("a:Widget\nx\n")); err == nil {
		t.Error("bad type must error")
	}
	if _, err := LoadCSV("t", strings.NewReader("a:Int\nnotint\n")); err == nil {
		t.Error("bad cell must error")
	}
	if _, err := LoadCSV("t", strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate columns must error")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tab, err := LoadCSV("people", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("people2", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round trip rows = %d, want %d", back.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		a, b := tab.Row(i), back.Row(i)
		for j := range a.Values {
			if !a.Values[j].Equal(b.Values[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, a.Values[j], b.Values[j])
			}
		}
	}
}

func TestLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "companies.csv")
	if err := os.WriteFile(path, []byte("companyName:String\nAcme\nGlobex\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := LoadCSVFile("", path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "companies" {
		t.Errorf("derived name = %q", tab.Name())
	}
	if tab.Len() != 2 {
		t.Errorf("rows = %d", tab.Len())
	}
	if _, err := LoadCSVFile("x", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file must error")
	}
	named, err := LoadCSVFile("custom", path)
	if err != nil {
		t.Fatal(err)
	}
	if named.Name() != "custom" {
		t.Errorf("explicit name = %q", named.Name())
	}
}
