// Package relation implements Qurk's storage engine: typed values,
// schemas, tuples, in-memory tables and pollable result tables.
//
// The data model follows the paper's §3: it is relational, except that
// attributes produced by human workers hold a *list* of answers (one per
// assignment) which user-defined aggregates reduce to a single value.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value types Qurk understands.
type Kind int

// Value kinds. KindImage is a reference (identifier/URL) to an image shown
// to workers; the engine never interprets image bytes. KindList holds
// multiple worker answers for one HIT. KindTuple is a nested record, used
// for UDFs such as findCEO that RETURN a tuple.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindImage
	KindList
	KindTuple
)

// String returns the type name as written in the TASK language.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindString:
		return "String"
	case KindInt:
		return "Int"
	case KindFloat:
		return "Float"
	case KindBool:
		return "Bool"
	case KindImage:
		return "Image"
	case KindList:
		return "List"
	case KindTuple:
		return "Tuple"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a TASK-language type name ("String", "Image[]"...)
// into a Kind. The "[]" suffix maps to KindList.
func ParseKind(s string) (Kind, error) {
	if strings.HasSuffix(s, "[]") {
		return KindList, nil
	}
	switch strings.ToLower(s) {
	case "string", "text":
		return KindString, nil
	case "int", "integer":
		return KindInt, nil
	case "float", "double":
		return KindFloat, nil
	case "bool", "boolean":
		return KindBool, nil
	case "image":
		return KindImage, nil
	case "tuple":
		return KindTuple, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown type %q", s)
	}
}

// Field is one named component of a tuple-valued Value.
type Field struct {
	Name  string
	Value Value
}

// Value is a dynamically typed datum. The zero Value is NULL.
// Values are immutable once constructed; sharing is safe.
type Value struct {
	kind   Kind
	str    string // KindString, KindImage
	num    int64  // KindInt
	real   float64
	truth  bool
	list   []Value
	fields []Field // KindTuple, sorted by Name
}

// Null is the NULL value.
var Null = Value{}

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, str: s} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, num: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, real: f} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, truth: b} }

// NewImage returns an image-reference value.
func NewImage(ref string) Value { return Value{kind: KindImage, str: ref} }

// NewList returns a list value holding the given elements.
// The slice is copied so later mutation by the caller cannot alias.
func NewList(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, list: cp}
}

// NewTuple returns a tuple value with the given fields. Field names must
// be unique; they are stored sorted so encoding is canonical.
func NewTuple(fields ...Field) Value {
	cp := make([]Field, len(fields))
	copy(cp, fields)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Name < cp[j].Name })
	return Value{kind: KindTuple, fields: cp}
}

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload of a String or Image value.
func (v Value) Str() string { return v.str }

// Int returns the integer payload; Float values are truncated.
func (v Value) Int() int64 {
	if v.kind == KindFloat {
		return int64(v.real)
	}
	return v.num
}

// Float returns the numeric payload as a float64.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.num)
	}
	return v.real
}

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.truth }

// List returns the elements of a list value. Callers must not mutate the
// returned slice.
func (v Value) List() []Value { return v.list }

// Len returns the number of elements of a list value, or 0.
func (v Value) Len() int { return len(v.list) }

// Fields returns the components of a tuple value, sorted by name.
// Callers must not mutate the returned slice.
func (v Value) Fields() []Field { return v.fields }

// Field returns the named component of a tuple value, or NULL.
func (v Value) Field(name string) Value {
	i := sort.Search(len(v.fields), func(i int) bool { return v.fields[i].Name >= name })
	if i < len(v.fields) && v.fields[i].Name == name {
		return v.fields[i].Value
	}
	return Null
}

// Truthy reports whether the value counts as true in a WHERE clause.
// NULL is false; numbers are true when non-zero; strings when non-empty;
// lists reduce by majority vote over their boolean elements.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.truth
	case KindInt:
		return v.num != 0
	case KindFloat:
		return v.real != 0
	case KindString, KindImage:
		return v.str != ""
	case KindList:
		yes := 0
		for _, e := range v.list {
			if e.Truthy() {
				yes++
			}
		}
		return yes*2 > len(v.list)
	default:
		return false
	}
}

// Compare orders two values. NULL sorts first; values of different kinds
// order by kind; numeric kinds compare numerically across Int/Float.
// Lists and tuples compare element-wise. The result is -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	if numeric(v.kind) && numeric(o.kind) {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString, KindImage:
		return strings.Compare(v.str, o.str)
	case KindBool:
		switch {
		case v.truth == o.truth:
			return 0
		case !v.truth:
			return -1
		default:
			return 1
		}
	case KindList:
		for i := 0; i < len(v.list) && i < len(o.list); i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		return len(v.list) - len(o.list)
	case KindTuple:
		for i := 0; i < len(v.fields) && i < len(o.fields); i++ {
			if c := strings.Compare(v.fields[i].Name, o.fields[i].Name); c != 0 {
				return c
			}
			if c := v.fields[i].Value.Compare(o.fields[i].Value); c != 0 {
				return c
			}
		}
		return len(v.fields) - len(o.fields)
	default:
		return 0
	}
}

// Equal reports whether two values are identical in kind and payload
// (unlike Compare, Int(1) and Float(1.0) are not Equal).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	return v.Compare(o) == 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.str
	case KindImage:
		return "img:" + v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.real, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.truth)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindTuple:
		parts := make([]string, len(v.fields))
		for i, f := range v.fields {
			parts[i] = f.Name + ": " + f.Value.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}

// Encode appends a canonical, injective byte encoding of the value to dst.
// It is used for task-cache keys and grouping, so two values encode
// equally iff Equal reports true.
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte('0'+int(v.kind)))
	switch v.kind {
	case KindString, KindImage:
		dst = strconv.AppendInt(dst, int64(len(v.str)), 10)
		dst = append(dst, ':')
		dst = append(dst, v.str...)
	case KindInt:
		dst = strconv.AppendInt(dst, v.num, 10)
	case KindFloat:
		dst = strconv.AppendFloat(dst, v.real, 'g', -1, 64)
	case KindBool:
		if v.truth {
			dst = append(dst, 't')
		} else {
			dst = append(dst, 'f')
		}
	case KindList:
		dst = strconv.AppendInt(dst, int64(len(v.list)), 10)
		for _, e := range v.list {
			dst = append(dst, ';')
			dst = e.Encode(dst)
		}
	case KindTuple:
		dst = strconv.AppendInt(dst, int64(len(v.fields)), 10)
		for _, f := range v.fields {
			dst = append(dst, ';')
			dst = strconv.AppendInt(dst, int64(len(f.Name)), 10)
			dst = append(dst, ':')
			dst = append(dst, f.Name...)
			dst = f.Value.Encode(dst)
		}
	}
	dst = append(dst, '|')
	return dst
}

// EncodeKey returns the canonical encoding as a string, suitable as a map
// key.
func (v Value) EncodeKey() string { return string(v.Encode(nil)) }

// ParseValue converts a textual literal into a value of the given kind.
func ParseValue(kind Kind, text string) (Value, error) {
	switch kind {
	case KindNull:
		return Null, nil
	case KindString:
		return NewString(text), nil
	case KindImage:
		return NewImage(text), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("relation: parse int %q: %v", text, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Null, fmt.Errorf("relation: parse float %q: %v", text, err)
		}
		return NewFloat(f), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(text)))
		if err != nil {
			return Null, fmt.Errorf("relation: parse bool %q: %v", text, err)
		}
		return NewBool(b), nil
	default:
		return Null, fmt.Errorf("relation: cannot parse literal of kind %v", kind)
	}
}
