package relation

import (
	"fmt"
	"strconv"
)

// MarshalBinary implements encoding.BinaryMarshaler using the canonical
// Encode format, so Values round-trip through gob for cache persistence.
func (v Value) MarshalBinary() ([]byte, error) {
	return v.Encode(nil), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *Value) UnmarshalBinary(data []byte) error {
	got, rest, err := DecodeValue(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("relation: %d trailing bytes after value", len(rest))
	}
	*v = got
	return nil
}

// DecodeValue parses one canonically encoded value from data, returning
// the value and the unconsumed remainder. It is the inverse of Encode.
func DecodeValue(data []byte) (Value, []byte, error) {
	if len(data) == 0 {
		return Null, nil, fmt.Errorf("relation: empty encoding")
	}
	kind := Kind(data[0] - '0')
	rest := data[1:]
	var v Value
	var err error
	switch kind {
	case KindNull:
		v = Null
	case KindString, KindImage:
		var s string
		s, rest, err = decodeLenPrefixed(rest)
		if err != nil {
			return Null, nil, err
		}
		if kind == KindString {
			v = NewString(s)
		} else {
			v = NewImage(s)
		}
	case KindInt:
		var num string
		num, rest = takeUntil(rest, '|')
		i, perr := strconv.ParseInt(num, 10, 64)
		if perr != nil {
			return Null, nil, fmt.Errorf("relation: bad int encoding %q", num)
		}
		if len(rest) == 0 {
			return Null, nil, fmt.Errorf("relation: missing terminator")
		}
		return NewInt(i), rest[1:], nil // consume '|'
	case KindFloat:
		var num string
		num, rest = takeUntil(rest, '|')
		f, perr := strconv.ParseFloat(num, 64)
		if perr != nil {
			return Null, nil, fmt.Errorf("relation: bad float encoding %q", num)
		}
		if len(rest) == 0 {
			return Null, nil, fmt.Errorf("relation: missing terminator")
		}
		return NewFloat(f), rest[1:], nil
	case KindBool:
		if len(rest) == 0 {
			return Null, nil, fmt.Errorf("relation: truncated bool")
		}
		v = NewBool(rest[0] == 't')
		rest = rest[1:]
	case KindList:
		var n int
		n, rest, err = decodeCount(rest)
		if err != nil {
			return Null, nil, err
		}
		elems := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			if len(rest) == 0 || rest[0] != ';' {
				return Null, nil, fmt.Errorf("relation: list element %d missing separator", i)
			}
			var e Value
			e, rest, err = DecodeValue(rest[1:])
			if err != nil {
				return Null, nil, err
			}
			elems = append(elems, e)
		}
		v = NewList(elems...)
	case KindTuple:
		var n int
		n, rest, err = decodeCount(rest)
		if err != nil {
			return Null, nil, err
		}
		fields := make([]Field, 0, n)
		for i := 0; i < n; i++ {
			if len(rest) == 0 || rest[0] != ';' {
				return Null, nil, fmt.Errorf("relation: tuple field %d missing separator", i)
			}
			var name string
			name, rest, err = decodeLenPrefixed(rest[1:])
			if err != nil {
				return Null, nil, err
			}
			var fv Value
			fv, rest, err = DecodeValue(rest)
			if err != nil {
				return Null, nil, err
			}
			fields = append(fields, Field{Name: name, Value: fv})
		}
		v = NewTuple(fields...)
	default:
		return Null, nil, fmt.Errorf("relation: bad kind byte %q", data[0])
	}
	if len(rest) == 0 || rest[0] != '|' {
		return Null, nil, fmt.Errorf("relation: missing terminator")
	}
	return v, rest[1:], nil
}

// decodeLenPrefixed parses "len:bytes".
func decodeLenPrefixed(data []byte) (string, []byte, error) {
	numStr, rest := takeUntil(data, ':')
	if len(rest) == 0 {
		return "", nil, fmt.Errorf("relation: missing length separator")
	}
	n, err := strconv.Atoi(numStr)
	if err != nil || n < 0 {
		return "", nil, fmt.Errorf("relation: bad length %q", numStr)
	}
	rest = rest[1:]
	if len(rest) < n {
		return "", nil, fmt.Errorf("relation: truncated string payload")
	}
	return string(rest[:n]), rest[n:], nil
}

// decodeCount parses a decimal count that is followed by ';' or '|'.
func decodeCount(data []byte) (int, []byte, error) {
	i := 0
	for i < len(data) && data[i] >= '0' && data[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, nil, fmt.Errorf("relation: missing count")
	}
	n, err := strconv.Atoi(string(data[:i]))
	if err != nil {
		return 0, nil, err
	}
	return n, data[i:], nil
}

// takeUntil splits data at the first occurrence of sep, returning the
// prefix as a string and the remainder starting at sep (or empty).
func takeUntil(data []byte, sep byte) (string, []byte) {
	for i := 0; i < len(data); i++ {
		if data[i] == sep {
			return string(data[:i]), data[i:]
		}
	}
	return string(data), nil
}
