package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// LoadCSV reads a relation from CSV. The header row declares columns as
// "name" or "name:Type" (Type one of String, Int, Float, Bool, Image);
// untyped columns default to String.
func LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %v", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		col := Column{Name: strings.TrimSpace(h), Kind: KindString}
		if j := strings.LastIndex(h, ":"); j >= 0 {
			kind, err := ParseKind(strings.TrimSpace(h[j+1:]))
			if err != nil {
				return nil, fmt.Errorf("relation: csv column %q: %v", h, err)
			}
			col = Column{Name: strings.TrimSpace(h[:j]), Kind: kind}
		}
		cols[i] = col
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := NewTable(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %v", line, err)
		}
		vals := make([]Value, len(cols))
		for i := range cols {
			cell := ""
			if i < len(rec) {
				cell = rec[i]
			}
			if cell == "" {
				vals[i] = Null
				continue
			}
			v, err := ParseValue(cols[i].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d col %s: %v", line, cols[i].Name, err)
			}
			vals[i] = v
		}
		if err := t.InsertValues(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LoadCSVFile is LoadCSV over a file path; the table is named after the
// file's base name without extension unless name is non-empty.
func LoadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if name == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndexByte(base, '.'); i >= 0 {
			base = base[:i]
		}
		name = base
	}
	return LoadCSV(name, f)
}

// WriteCSV renders the table as CSV with a typed header.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema().Len())
	for i, c := range t.Schema().Columns() {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Snapshot() {
		rec := make([]string, len(row.Values))
		for i, v := range row.Values {
			switch {
			case v.IsNull():
				rec[i] = ""
			case v.Kind() == KindImage:
				rec[i] = v.Str() // avoid the display-only "img:" prefix
			default:
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
