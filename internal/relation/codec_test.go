package relation

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeRoundTripBasics(t *testing.T) {
	values := []Value{
		Null,
		NewString(""),
		NewString("hello world"),
		NewString("with|pipe;and:colon"),
		NewImage("x.png"),
		NewInt(0),
		NewInt(-12345),
		NewFloat(2.5),
		NewFloat(-1e-7),
		NewBool(true),
		NewBool(false),
		NewList(),
		NewList(NewInt(1), NewString("a"), NewBool(false)),
		NewList(NewList(NewInt(1)), NewList()),
		NewTuple(),
		NewTuple(Field{"CEO", NewString("Ada")}, Field{"Phone", NewString("555")}),
		NewTuple(Field{"nested", NewTuple(Field{"x", NewInt(1)})}),
	}
	for _, v := range values {
		enc := v.Encode(nil)
		got, rest, err := DecodeValue(enc)
		if err != nil {
			t.Errorf("decode %v: %v", v, err)
			continue
		}
		if len(rest) != 0 {
			t.Errorf("decode %v: %d trailing bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeSequence(t *testing.T) {
	var buf []byte
	buf = NewInt(7).Encode(buf)
	buf = NewString("x").Encode(buf)
	a, rest, err := DecodeValue(buf)
	if err != nil || a.Int() != 7 {
		t.Fatalf("first = %v err=%v", a, err)
	}
	b, rest, err := DecodeValue(rest)
	if err != nil || b.Str() != "x" || len(rest) != 0 {
		t.Fatalf("second = %v err=%v rest=%d", b, err, len(rest))
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("9"),        // bad kind
		[]byte("2xx|"),     // bad int
		[]byte("3zz|"),     // bad float
		[]byte("4"),        // truncated bool
		[]byte("15:ab|"),   // truncated string payload
		[]byte("1x:ab|"),   // bad length
		[]byte("62"),       // list count, truncated
		[]byte("62;11:a|"), // list missing second element
		[]byte("1"),        // missing length separator entirely
		[]byte("20"),       // int missing terminator... actually takeUntil returns all, rest empty -> index panic? check
	}
	for i, enc := range bad {
		if _, _, err := decodeSafe(enc); err == nil {
			t.Errorf("case %d (%q): expected error", i, enc)
		}
	}
}

// decodeSafe guards against panics so the test reports them as errors.
func decodeSafe(enc []byte) (v Value, rest []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{}
		}
	}()
	return DecodeValue(enc)
}

// Error is a trivial error used by decodeSafe.
type Error struct{}

func (*Error) Error() string { return "panic" }

func TestGobRoundTrip(t *testing.T) {
	v := NewTuple(
		Field{"CEO", NewString("Ada")},
		Field{"Scores", NewList(NewInt(1), NewFloat(2.5))},
	)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	var got Value
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("gob round trip: %v != %v", got, v)
	}
}

// Property: every randomly generated value round-trips.
func TestDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)), 4)
		got, rest, err := DecodeValue(v.Encode(nil))
		return err == nil && len(rest) == 0 && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
