package relation

import (
	"fmt"
	"sync"
)

// Table is a concurrency-safe, append-only in-memory relation.
// The zero value is not usable; construct with NewTable.
type Table struct {
	name   string
	schema *Schema

	mu   sync.RWMutex
	rows []Tuple
	// version counts appended rows forever; pollers use it as a cursor.
	version int64
	waiters []chan struct{}
	closed  bool
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the current number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a tuple after checking it against the schema.
func (t *Table) Insert(tup Tuple) error {
	if tup.Schema != nil && tup.Schema.Len() != t.schema.Len() {
		return fmt.Errorf("relation: insert into %s: arity %d != %d", t.name, tup.Schema.Len(), t.schema.Len())
	}
	if len(tup.Values) != t.schema.Len() {
		return fmt.Errorf("relation: insert into %s: %d values for %d columns", t.name, len(tup.Values), t.schema.Len())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("relation: insert into closed table %s", t.name)
	}
	t.rows = append(t.rows, Tuple{Schema: t.schema, Values: tup.Values})
	t.version++
	t.notifyLocked()
	return nil
}

// InsertValues appends a row given bare values.
func (t *Table) InsertValues(values ...Value) error {
	return t.Insert(Tuple{Schema: t.schema, Values: values})
}

// Snapshot returns a copy of the current rows.
func (t *Table) Snapshot() []Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Tuple, len(t.rows))
	copy(out, t.rows)
	return out
}

// Row returns the i-th row.
func (t *Table) Row(i int) Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[i]
}

// Version returns the monotone row-count cursor.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Poll returns rows appended after cursor (a value previously returned by
// Poll or Version; 0 means "from the beginning") together with the new
// cursor. It never blocks; see Wait for blocking.
func (t *Table) Poll(cursor int64) ([]Tuple, int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > int64(len(t.rows)) {
		cursor = int64(len(t.rows))
	}
	fresh := t.rows[cursor:]
	out := make([]Tuple, len(fresh))
	copy(out, fresh)
	return out, t.version
}

// Close marks the table complete: no further inserts are accepted, and
// Wait returns immediately. Used by result tables to signal end-of-query.
func (t *Table) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	t.notifyLocked()
}

// Closed reports whether the table has been closed.
func (t *Table) Closed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.closed
}

// Wait blocks until the table's version exceeds cursor or the table is
// closed. It returns the rows past cursor and the new cursor, like Poll.
func (t *Table) Wait(cursor int64) ([]Tuple, int64) {
	for {
		t.mu.Lock()
		if t.version > cursor || t.closed {
			t.mu.Unlock()
			return t.Poll(cursor)
		}
		ch := make(chan struct{})
		t.waiters = append(t.waiters, ch)
		t.mu.Unlock()
		<-ch
	}
}

// WaitClosed blocks until Close is called, then returns all rows.
func (t *Table) WaitClosed() []Tuple {
	cursor := int64(0)
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			rows, _ := t.Poll(0)
			return rows
		}
		ch := make(chan struct{})
		t.waiters = append(t.waiters, ch)
		t.mu.Unlock()
		<-ch
		_ = cursor
	}
}

func (t *Table) notifyLocked() {
	for _, ch := range t.waiters {
		close(ch)
	}
	t.waiters = nil
}

// Catalog is a named collection of tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds a table; replacing an existing name is an error.
func (c *Catalog) Register(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("relation: table %q already registered", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Replace adds or replaces a table.
func (c *Catalog) Replace(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name()] = t
}

// Drop removes a table by name.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Names returns the registered table names (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}
