package relation

import (
	"strings"
	"sync"
	"testing"
)

func twoColSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(Column{"name", KindString}, Column{"age", KindInt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDuplicate(t *testing.T) {
	if _, err := NewSchema(Column{"a", KindInt}, Column{"A", KindInt}); err == nil {
		t.Error("duplicate (case-insensitive) columns must error")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema(Column{"t.a", KindInt}, Column{"t.b", KindString}, Column{"u.b", KindString})
	if i, ok := s.Lookup("t.a"); !ok || i != 0 {
		t.Errorf("qualified lookup = %d,%v", i, ok)
	}
	if i, ok := s.Lookup("T.A"); !ok || i != 0 {
		t.Errorf("case-insensitive lookup = %d,%v", i, ok)
	}
	if i, ok := s.Lookup("a"); !ok || i != 0 {
		t.Errorf("bare unique lookup = %d,%v", i, ok)
	}
	if _, ok := s.Lookup("b"); ok {
		t.Error("ambiguous bare lookup must fail")
	}
	if _, ok := s.Lookup("zz"); ok {
		t.Error("missing lookup must fail")
	}
}

func TestSchemaQualifyConcat(t *testing.T) {
	s := MustSchema(Column{"a", KindInt}, Column{"b", KindString})
	q := s.Qualify("t")
	if q.Column(0).Name != "t.a" || q.Column(1).Name != "t.b" {
		t.Errorf("Qualify: %v", q)
	}
	// Requalifying replaces the old prefix.
	q2 := q.Qualify("u")
	if q2.Column(0).Name != "u.a" {
		t.Errorf("requalify: %v", q2)
	}
	cat, err := q.Concat(s.Qualify("u"))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 4 {
		t.Errorf("concat len = %d", cat.Len())
	}
	if _, err := q.Concat(q); err == nil {
		t.Error("self-concat must report duplicate columns")
	}
}

func TestTupleBasics(t *testing.T) {
	s := twoColSchema(t)
	tup := MustTuple(s, NewString("ann"), NewInt(30))
	if got := tup.Get("name").Str(); got != "ann" {
		t.Errorf("Get(name) = %q", got)
	}
	if got := tup.Get("AGE").Int(); got != 30 {
		t.Errorf("Get(AGE) = %d", got)
	}
	if !tup.Get("zzz").IsNull() {
		t.Error("missing attribute should be NULL")
	}
	if !tup.Has("name") || tup.Has("zzz") {
		t.Error("Has() wrong")
	}
	if _, err := NewTupleRow(s, NewString("x")); err == nil {
		t.Error("arity mismatch must error")
	}
	str := tup.String()
	if !strings.Contains(str, "name: ann") {
		t.Errorf("String() = %q", str)
	}
}

func TestTupleJoin(t *testing.T) {
	a := MustTuple(MustSchema(Column{"l.x", KindInt}), NewInt(1))
	b := MustTuple(MustSchema(Column{"r.y", KindInt}), NewInt(2))
	j, err := a.Join(b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Get("l.x").Int() != 1 || j.Get("r.y").Int() != 2 {
		t.Errorf("join tuple = %v", j)
	}
}

func TestTableInsertSnapshotPoll(t *testing.T) {
	tab := NewTable("people", twoColSchema(t))
	if tab.Name() != "people" {
		t.Errorf("Name = %q", tab.Name())
	}
	if err := tab.InsertValues(NewString("ann"), NewInt(30)); err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertValues(NewString("bob"), NewInt(40)); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	rows, cur := tab.Poll(0)
	if len(rows) != 2 || cur != 2 {
		t.Fatalf("Poll(0) = %d rows cur=%d", len(rows), cur)
	}
	rows, cur = tab.Poll(cur)
	if len(rows) != 0 || cur != 2 {
		t.Fatalf("Poll(cur) = %d rows cur=%d", len(rows), cur)
	}
	if err := tab.InsertValues(NewString("carol"), NewInt(50)); err != nil {
		t.Fatal(err)
	}
	rows, cur = tab.Poll(cur)
	if len(rows) != 1 || rows[0].Get("name").Str() != "carol" {
		t.Fatalf("incremental poll = %v", rows)
	}
	if cur != 3 {
		t.Fatalf("cursor = %d", cur)
	}
	if tab.Row(1).Get("name").Str() != "bob" {
		t.Error("Row(1) wrong")
	}
}

func TestTableInsertArityErrors(t *testing.T) {
	tab := NewTable("t", twoColSchema(t))
	if err := tab.InsertValues(NewString("x")); err == nil {
		t.Error("short insert must error")
	}
	other := MustSchema(Column{"a", KindInt})
	if err := tab.Insert(MustTuple(other, NewInt(1))); err == nil {
		t.Error("schema arity mismatch must error")
	}
}

func TestTableCloseSemantics(t *testing.T) {
	tab := NewTable("r", twoColSchema(t))
	if tab.Closed() {
		t.Error("new table must not be closed")
	}
	tab.Close()
	tab.Close() // idempotent
	if !tab.Closed() {
		t.Error("Close did not stick")
	}
	if err := tab.InsertValues(NewString("x"), NewInt(1)); err == nil {
		t.Error("insert into closed table must error")
	}
}

func TestTableWaitWakesOnInsert(t *testing.T) {
	tab := NewTable("r", twoColSchema(t))
	done := make(chan []Tuple)
	go func() {
		rows, _ := tab.Wait(0)
		done <- rows
	}()
	if err := tab.InsertValues(NewString("ann"), NewInt(1)); err != nil {
		t.Fatal(err)
	}
	rows := <-done
	if len(rows) != 1 {
		t.Fatalf("Wait returned %d rows", len(rows))
	}
}

func TestTableWaitWakesOnClose(t *testing.T) {
	tab := NewTable("r", twoColSchema(t))
	done := make(chan struct{})
	go func() {
		tab.Wait(0)
		close(done)
	}()
	tab.Close()
	<-done
}

func TestTableWaitClosedCollectsAll(t *testing.T) {
	tab := NewTable("r", twoColSchema(t))
	var wg sync.WaitGroup
	wg.Add(1)
	var got []Tuple
	go func() {
		defer wg.Done()
		got = tab.WaitClosed()
	}()
	for i := 0; i < 5; i++ {
		if err := tab.InsertValues(NewString("x"), NewInt(int64(i))); err != nil {
			t.Error(err)
		}
	}
	tab.Close()
	wg.Wait()
	if len(got) != 5 {
		t.Fatalf("WaitClosed returned %d rows", len(got))
	}
}

func TestTableConcurrentInserts(t *testing.T) {
	tab := NewTable("r", twoColSchema(t))
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = tab.InsertValues(NewString("w"), NewInt(int64(w*per+i)))
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tab.Len(), workers*per)
	}
	if tab.Version() != int64(workers*per) {
		t.Fatalf("Version = %d", tab.Version())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tab := NewTable("a", twoColSchema(t))
	if err := c.Register(tab); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(NewTable("a", twoColSchema(t))); err == nil {
		t.Error("duplicate register must error")
	}
	got, ok := c.Table("a")
	if !ok || got != tab {
		t.Error("Table lookup failed")
	}
	c.Replace(NewTable("a", twoColSchema(t)))
	got2, _ := c.Table("a")
	if got2 == tab {
		t.Error("Replace did not swap")
	}
	c.Drop("a")
	if _, ok := c.Table("a"); ok {
		t.Error("Drop failed")
	}
	_ = c.Register(NewTable("x", twoColSchema(t)))
	_ = c.Register(NewTable("y", twoColSchema(t)))
	if n := len(c.Names()); n != 2 {
		t.Errorf("Names = %d entries", n)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	tab := NewTable("r", twoColSchema(t))
	_ = tab.InsertValues(NewString("a"), NewInt(1))
	snap := tab.Snapshot()
	_ = tab.InsertValues(NewString("b"), NewInt(2))
	if len(snap) != 1 {
		t.Error("snapshot must not grow with table")
	}
}
