package mturk

import "strconv"

// ShardIndex routes a string key (HIT ID, task key) to one of n shards
// via FNV-1a. Every lock-striped structure in the engine — marketplace
// shards, clock-adjacent tables in taskmgr, crowd claim stripes — uses
// this single definition so the routing can never diverge.
func ShardIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// PaddedID formats prefix + n zero-padded to at least 6 digits (the
// "%06d" wire format of HIT and task keys) without fmt overhead: IDs
// are minted on posting hot paths.
func PaddedID(prefix string, n int64) string {
	buf := make([]byte, 0, len(prefix)+8)
	buf = append(buf, prefix...)
	for pad := int64(100000); n < pad && pad > 1; pad /= 10 {
		buf = append(buf, '0')
	}
	buf = strconv.AppendInt(buf, n, 10)
	return string(buf)
}
