package mturk

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Both configuration hooks are read under cfgMu at their point of use,
// so installing them after posting begins is safe: the worker filter
// vets every claim dispatched from then on, and the error handler hears
// failures that happen from then on. These tests pin that contract.

func TestHooksInstallAfterPost(t *testing.T) {
	clock := NewClock()
	pool := &fakePool{abandons: 1}
	m := NewMarketplace(clock, pool)
	h := filterHIT(m.NewHITID(), 1)
	err := m.Post(h, func(AssignmentResult) {
		t.Error("assignment completed despite the late-installed filter")
	})
	if err != nil {
		t.Fatal(err)
	}
	// Install both hooks only after Post has dispatched its first
	// claim. The first worker abandons; every re-dispatch after that
	// must be vetted by the new filter, and when retries exhaust the
	// new handler must hear about it.
	m.SetWorkerFilter(func(workerID string) bool { return workerID != "w1" })
	var failed atomic.Int32
	m.SetErrorHandler(func(hitID string, err error) {
		if hitID != h.ID {
			t.Errorf("failure reported for %s, want %s", hitID, h.ID)
		}
		if err == nil {
			t.Error("failure reported with nil error")
		}
		failed.Add(1)
	})
	pump(t, clock, func() bool { return failed.Load() == 1 })
	pool.mu.Lock()
	claims := pool.claims
	pool.mu.Unlock()
	// 1 pre-filter claim (abandoned) + MaxRetries vetted re-dispatches.
	if want := 1 + m.MaxRetries; claims != want {
		t.Fatalf("claims = %d, want %d (filter should vet every re-dispatch)", claims, want)
	}
}

func TestWorkerFilterDoesNotRevokeClaimedAssignments(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	var mu sync.Mutex
	var done int
	h := filterHIT(m.NewHITID(), 1)
	if err := m.Post(h, func(AssignmentResult) {
		mu.Lock()
		done++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// The claim was dispatched (and allowed) before this filter
	// existed; the in-flight assignment still completes and is paid.
	m.SetWorkerFilter(func(string) bool { return false })
	pump(t, clock, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done == 1
	})
	st, ok := m.Status(h.ID)
	if !ok || st.Completed != 1 || st.Spent != 2 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
}
