// Package mturk simulates the Mechanical Turk marketplace Qurk posts
// HITs to. The paper's workload runs against the real MTurk, where one
// HIT takes minutes; here a discrete-event virtual clock provides the
// same asynchrony and minutes-scale latency accounting while experiments
// finish in milliseconds. See DESIGN.md §2 for the substitution argument.
package mturk

import (
	"container/heap"
	"sync"
	"time"
)

// VirtualTime is simulated time since the start of the run.
type VirtualTime time.Duration

// Minutes reports the virtual time in minutes.
func (v VirtualTime) Minutes() float64 { return time.Duration(v).Minutes() }

// Duration converts to a time.Duration.
func (v VirtualTime) Duration() time.Duration { return time.Duration(v) }

type event struct {
	at  VirtualTime
	seq int64 // tie-break so equal-time events run in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a deterministic discrete-event scheduler. Events run on the
// pump goroutine (Step/Run); Schedule is safe from any goroutine.
type Clock struct {
	mu     sync.Mutex
	now    VirtualTime
	events eventHeap
	seq    int64
	closed bool
	wake   chan struct{} // closed-and-replaced on Schedule/Close
	pace   pace          // optional real-time rate (see SetPace)
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock {
	return &Clock{wake: make(chan struct{})}
}

// Now returns the current virtual time.
func (c *Clock) Now() VirtualTime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Schedule enqueues fn to run at now+delay. Negative delays run "now".
func (c *Clock) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.seq++
	heap.Push(&c.events, &event{at: c.now + VirtualTime(delay), seq: c.seq, fn: fn})
	c.wakeLocked()
}

func (c *Clock) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// Pending reports the number of scheduled events.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Step runs the earliest event, advancing virtual time to it. It reports
// false when no events are pending.
func (c *Clock) Step() bool {
	c.mu.Lock()
	if len(c.events) == 0 {
		c.mu.Unlock()
		return false
	}
	e := heap.Pop(&c.events).(*event)
	if e.at > c.now {
		c.now = e.at
	}
	c.mu.Unlock()
	e.fn() // run outside the lock so events may Schedule more events
	return true
}

// Run pumps events until stop reports true and the event queue is idle.
// When the queue is momentarily empty but stop is still false — executor
// goroutines run concurrently with the pump and may be about to post new
// HITs — Run waits for a Schedule wakeup, with a short real-time poll as
// a liveness backstop for the window where stop flips without any final
// event.
func (c *Clock) Run(stop func() bool) {
	for {
		if factor := c.pace.get(); factor > 0 {
			if at, ok := c.peekNext(); ok && at > c.Now() {
				if stop() {
					return
				}
				if !c.paceWait(factor) {
					return
				}
				continue
			}
		}
		if c.Step() {
			continue
		}
		if stop() {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		wake := c.wake
		empty := len(c.events) == 0
		c.mu.Unlock()
		if !empty {
			continue
		}
		select {
		case <-wake:
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// Close wakes Run so it can observe shutdown. Scheduled-but-unrun events
// are dropped.
func (c *Clock) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.events = nil
	c.wakeLocked()
}

// Closed reports whether Close has been called.
func (c *Clock) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
