// Package mturk simulates the Mechanical Turk marketplace Qurk posts
// HITs to. The paper's workload runs against the real MTurk, where one
// HIT takes minutes; here a discrete-event virtual clock provides the
// same asynchrony and minutes-scale latency accounting while experiments
// finish in milliseconds. See DESIGN.md §2 for the substitution argument.
//
// # Sharding design
//
// Both the marketplace and the clock are lock-striped so that the
// thousands-of-async-HITs regime the paper targets scales with cores
// instead of serializing behind one mutex:
//
//   - Marketplace state is partitioned across DefaultMarketShards
//     shards keyed by an FNV-1a hash of the HIT ID; Post, complete,
//     Status and SubmitExternal touch only one shard's lock, and the
//     marketplace-wide Stats counters are atomics, so concurrent
//     requesters on different shards never contend.
//   - The clock keeps one logical timeline but spreads pending events
//     over per-shard queues (round-robin by sequence number). Schedule
//     takes only one shard lock; Step merges the queues by (time, seq),
//     which is a deterministic total order because seq comes from one
//     atomic counter. The shard count therefore never changes execution
//     order: identical schedules replay identically at any shard count.
//
// Determinism guarantee: every event whose Schedule completed before a
// Step begins runs in strictly increasing (time, seq) order; a Schedule
// overlapping a Step races it exactly as it would have raced the old
// single-mutex pop (see Step). When all scheduling happens from the
// pump goroutine itself (the single-threaded harness pattern — see
// internal/load), no such races exist and the whole simulation is a
// pure function of its seeds.
package mturk

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// VirtualTime is simulated time since the start of the run.
type VirtualTime time.Duration

// Minutes reports the virtual time in minutes.
func (v VirtualTime) Minutes() float64 { return time.Duration(v).Minutes() }

// Duration converts to a time.Duration.
func (v VirtualTime) Duration() time.Duration { return time.Duration(v) }

type event struct {
	at  VirtualTime
	seq int64 // tie-break so equal-time events run in schedule order
	fn  func()
}

// eventPool recycles event nodes: the benchmark regime schedules
// millions of events and the per-event allocation was a measurable share
// of marketplace overhead.
var eventPool = sync.Pool{New: func() interface{} { return new(event) }}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// clockShard is one independently locked slice of the pending-event set.
// The padding keeps shards on separate cache lines.
type clockShard struct {
	mu     sync.Mutex
	events eventHeap
	_      [40]byte
}

// MaxClockShards caps the number of event queues a clock stripes
// schedules across. The effective count is min(MaxClockShards,
// GOMAXPROCS): striping only pays when schedulers actually run in
// parallel, and because Step merges shards by the global (time, seq)
// order, the shard count never affects execution order.
const MaxClockShards = 8

func clockShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n > MaxClockShards {
		n = MaxClockShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Clock is a deterministic discrete-event scheduler. Events run on the
// pump goroutine (Step/Run) in (time, seq) order; Schedule is safe from
// any goroutine and takes only one shard lock.
type Clock struct {
	now    atomic.Int64 // VirtualTime; written by the pump only
	seq    atomic.Int64
	closed atomic.Bool
	// schedVersion counts completed insertions; Step rescans when it
	// changes mid-scan so a concurrently scheduled earlier event on an
	// already-visited shard is not passed over.
	schedVersion atomic.Int64

	shards []clockShard

	// wake is a one-slot nudge channel for a blocked Run loop; waiting
	// gates the sends so the common Schedule path is allocation- and
	// syscall-free.
	wake    chan struct{}
	waiting atomic.Bool

	pace pace // optional real-time rate (see SetPace)
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock {
	return &Clock{
		shards: make([]clockShard, clockShardCount()),
		wake:   make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (c *Clock) Now() VirtualTime { return VirtualTime(c.now.Load()) }

// Schedule enqueues fn to run at now+delay. Negative delays run "now".
func (c *Clock) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	seq := c.seq.Add(1)
	e := eventPool.Get().(*event)
	e.at = c.Now() + VirtualTime(delay)
	e.seq = seq
	e.fn = fn
	sh := &c.shards[uint64(seq)%uint64(len(c.shards))]
	sh.mu.Lock()
	if c.closed.Load() {
		sh.mu.Unlock()
		return
	}
	heap.Push(&sh.events, e)
	sh.mu.Unlock()
	c.schedVersion.Add(1)
	if c.waiting.CompareAndSwap(true, false) {
		c.wakeAll()
	}
}

// wakeAll nudges any blocked Run loop. The one-slot channel makes it
// non-blocking and allocation-free; a stale token only causes a
// harmless spurious loop iteration.
func (c *Clock) wakeAll() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Pending reports the number of scheduled events.
func (c *Clock) Pending() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}

// Step runs the earliest event — the (time, seq) minimum across every
// shard queue — advancing virtual time to it. It reports false when no
// events are pending.
//
// Every event whose Schedule call completed before Step began is merged
// in strict (time, seq) order: the scan retries whenever an insertion
// lands mid-scan (schedVersion) or the chosen shard's head changes. A
// Schedule still racing Step after several retries may see its event
// deferred to the next Step, where it runs at the already-advanced
// virtual now — observably the same as having scheduled just after the
// popped event fired, which is the only honest ordering for a schedule
// that overlaps the pop.
func (c *Clock) Step() bool {
	const maxRescans = 4
	for attempt := 0; ; attempt++ {
		version := c.schedVersion.Load()
		best := -1
		var bestAt VirtualTime
		var bestSeq int64
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			if len(sh.events) > 0 {
				e := sh.events[0]
				if best < 0 || e.at < bestAt || (e.at == bestAt && e.seq < bestSeq) {
					best, bestAt, bestSeq = i, e.at, e.seq
				}
			}
			sh.mu.Unlock()
		}
		if best < 0 {
			if c.schedVersion.Load() != version {
				continue // an insert raced the empty scan; look again
			}
			return false
		}
		if attempt < maxRescans && c.schedVersion.Load() != version {
			continue // something landed mid-scan; re-establish the minimum
		}
		sh := &c.shards[best]
		sh.mu.Lock()
		if len(sh.events) == 0 || sh.events[0].seq != bestSeq {
			// An earlier event arrived on this shard between the scan
			// and the pop; rescan so the merge order stays correct.
			sh.mu.Unlock()
			continue
		}
		e := heap.Pop(&sh.events).(*event)
		sh.mu.Unlock()
		if at := int64(e.at); at > c.now.Load() {
			c.now.Store(at)
		}
		fn := e.fn
		*e = event{}
		eventPool.Put(e)
		fn() // run outside all locks so events may Schedule more events
		return true
	}
}

// Run pumps events until stop reports true and the event queue is idle.
// When the queue is momentarily empty but stop is still false — executor
// goroutines run concurrently with the pump and may be about to post new
// HITs — Run waits for a Schedule wakeup, with a short real-time poll as
// a liveness backstop for the window where stop flips without any final
// event.
func (c *Clock) Run(stop func() bool) {
	var poll *time.Timer
	for {
		if factor := c.pace.get(); factor > 0 {
			if at, ok := c.peekNext(); ok && at > c.Now() {
				if stop() {
					return
				}
				if !c.paceWait(factor) {
					return
				}
				continue
			}
		}
		if c.Step() {
			continue
		}
		if stop() {
			return
		}
		if c.closed.Load() {
			return
		}
		c.waiting.Store(true)
		if c.Pending() > 0 {
			c.waiting.Store(false)
			continue
		}
		if poll == nil {
			poll = time.NewTimer(200 * time.Microsecond)
		} else {
			poll.Reset(200 * time.Microsecond)
		}
		select {
		case <-c.wake:
			poll.Stop()
		case <-poll.C:
		}
		c.waiting.Store(false)
	}
}

// Close wakes Run so it can observe shutdown. Scheduled-but-unrun events
// are dropped.
func (c *Clock) Close() {
	if c.closed.Swap(true) {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.events = nil
		sh.mu.Unlock()
	}
	c.wakeAll()
}

// Closed reports whether Close has been called.
func (c *Clock) Closed() bool { return c.closed.Load() }
