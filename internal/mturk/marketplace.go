package mturk

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/hit"
)

// Claim is a worker pool's promise to complete one assignment.
type Claim struct {
	WorkerID string
	// Delay is the virtual time from now until submission (queueing
	// plus work time).
	Delay time.Duration
	// Answer produces the worker's answers; it runs at submission time.
	Answer func() (hit.Answers, error)
}

// WorkerPool supplies workers for posted HITs. Implemented by the
// synthetic crowd (internal/crowd) and by test fakes.
type WorkerPool interface {
	// Claim asks the pool to work on h starting at virtual time now.
	// ok=false means no worker is currently willing (the marketplace
	// retries after a backoff).
	Claim(h *hit.HIT, now VirtualTime) (Claim, bool)
}

// AssignmentResult is delivered to the requester for every completed
// assignment.
type AssignmentResult struct {
	HITID       string
	Answers     hit.Answers
	SubmittedAt VirtualTime
	// External marks submissions from the live task-completion UI
	// rather than the simulated crowd.
	External bool
}

// HITStatus describes a posted HIT's lifecycle for the dashboard.
type HITStatus struct {
	HIT       *hit.HIT
	PostedAt  VirtualTime
	Completed int
	// Extended counts assignment slots added after posting via
	// ExtendAssignments. It lives here rather than on the HIT so the
	// posted HIT stays immutable under concurrent readers.
	Extended int
	DoneAt   VirtualTime // valid when Completed == Assignments+Extended
	Spent    budget.Cents
}

// Open reports whether assignments remain outstanding.
func (s HITStatus) Open() bool { return s.Completed < s.HIT.Assignments+s.Extended }

type postedHIT struct {
	status   HITStatus
	callback func(AssignmentResult)
}

// Stats are marketplace-wide counters for the dashboard. They are
// maintained as atomics, so a snapshot taken while assignments complete
// concurrently may be off by the in-flight increment — fine for a
// dashboard, and it keeps Stats() off every shard's lock.
type Stats struct {
	HITsPosted           int
	AssignmentsCompleted int
	QuestionsAnswered    int // assignments × batched questions
	SpentCents           budget.Cents
	ExternalSubmissions  int
}

// DefaultMarketShards is the number of lock stripes HIT state is
// partitioned across (a power of two; HIT IDs hash uniformly).
const DefaultMarketShards = 16

// marketShard is one independently locked partition of posted HITs.
// The padding keeps shard locks on separate cache lines.
type marketShard struct {
	mu   sync.Mutex
	hits map[string]*postedHIT
	_    [40]byte
}

// Marketplace accepts HITs and routes them to a worker pool under the
// virtual clock, mimicking MTurk's requester API surface. State is
// sharded by HIT ID (see the package comment), so concurrent Post,
// complete and Status calls only contend when they hit the same shard.
type Marketplace struct {
	clock *Clock
	pool  WorkerPool

	// RetryBackoff is the virtual delay before re-asking the pool when
	// no worker is available or a worker abandons an assignment.
	RetryBackoff time.Duration
	// MaxRetries bounds abandons per assignment before the HIT errors
	// out. At least 1 attempt is always made.
	MaxRetries int

	shards []marketShard
	nextID atomic.Int64

	hitsPosted           atomic.Int64
	assignmentsCompleted atomic.Int64
	questionsAnswered    atomic.Int64
	spentCents           atomic.Int64
	externalSubmissions  atomic.Int64

	// autoDispose drops a HIT's state the moment its last assignment
	// completes (after handing the final status to the observer), like
	// MTurk's DeleteHIT. It bounds memory when millions of HITs flow
	// through a long-running marketplace; dashboards that want history
	// leave it off.
	autoDispose atomic.Bool

	// cfgMu guards the rarely written callbacks below.
	cfgMu      sync.RWMutex
	onDisposed func(HITStatus)
	onError    func(hitID string, err error)
	// workerFilter, when set, vets each claim's worker; rejected
	// claims are re-dispatched after the retry backoff (like an MTurk
	// qualification requirement).
	workerFilter func(workerID string) bool
}

// NewMarketplace wires a marketplace to a clock and worker pool.
func NewMarketplace(clock *Clock, pool WorkerPool) *Marketplace {
	m := &Marketplace{
		clock:        clock,
		pool:         pool,
		RetryBackoff: 30 * time.Second,
		MaxRetries:   10,
		shards:       make([]marketShard, DefaultMarketShards),
	}
	for i := range m.shards {
		m.shards[i].hits = make(map[string]*postedHIT)
	}
	return m
}

// shardFor routes a HIT ID to its shard.
func (m *Marketplace) shardFor(hitID string) *marketShard {
	return &m.shards[ShardIndex(hitID, len(m.shards))]
}

// Clock returns the marketplace's virtual clock.
func (m *Marketplace) Clock() *Clock { return m.clock }

// SetErrorHandler installs a callback for assignments that exhaust their
// retries; the default drops them silently counted in stats.
//
// Installation is safe at any time, including after posting begins:
// the handler is read under cfgMu at each failure, so in-flight HITs
// observe the new handler on their next failure. Hooks installed from
// another goroutine while the clock runs are fine; what cannot work is
// expecting a late handler to re-deliver failures that already fired.
func (m *Marketplace) SetErrorHandler(fn func(hitID string, err error)) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.onError = fn
}

// SetWorkerFilter installs a qualification predicate: claims by workers
// it rejects are re-dispatched to someone else. nil accepts everyone.
//
// Like SetErrorHandler, installation is safe after posting begins: the
// filter is read under cfgMu at each claim dispatch, so already-posted
// HITs apply the new predicate to every assignment still unclaimed.
// Assignments completed before installation are not revoked — backends
// installing hooks lazily (the router does) lose no safety, only the
// chance to filter work that already finished.
func (m *Marketplace) SetWorkerFilter(fn func(workerID string) bool) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	m.workerFilter = fn
}

// SetAutoDispose switches automatic disposal of fully completed HITs on
// or off. observer (optional) receives each HIT's final status right
// before its state is dropped — the only way to see per-HIT lifecycle
// data in this mode, since Status/AllHITs no longer will.
func (m *Marketplace) SetAutoDispose(on bool, observer func(HITStatus)) {
	m.cfgMu.Lock()
	m.onDisposed = observer
	m.cfgMu.Unlock()
	m.autoDispose.Store(on)
}

// Dispose removes a HIT's state (like MTurk's DeleteHIT), returning its
// last status. Late submissions for a disposed HIT are discarded.
func (m *Marketplace) Dispose(hitID string) (HITStatus, bool) {
	sh := m.shardFor(hitID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ph, ok := sh.hits[hitID]
	if !ok {
		return HITStatus{}, false
	}
	delete(sh.hits, hitID)
	return ph.status, true
}

func (m *Marketplace) workerAllowed(workerID string) bool {
	m.cfgMu.RLock()
	fn := m.workerFilter
	m.cfgMu.RUnlock()
	return fn == nil || fn(workerID)
}

// NewHITID issues a process-unique HIT identifier ("HIT-%06d").
func (m *Marketplace) NewHITID() string {
	return PaddedID("HIT-", m.nextID.Add(1))
}

// Post publishes a HIT. onAssignment is invoked (on the clock goroutine)
// once per completed assignment, h.Assignments times in total unless
// retries are exhausted.
func (m *Marketplace) Post(h *hit.HIT, onAssignment func(AssignmentResult)) error {
	if err := h.Validate(); err != nil {
		return err
	}
	now := m.clock.Now()
	ph := &postedHIT{
		status:   HITStatus{HIT: h, PostedAt: now},
		callback: onAssignment,
	}
	sh := m.shardFor(h.ID)
	sh.mu.Lock()
	if _, dup := sh.hits[h.ID]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("mturk: duplicate HIT id %s", h.ID)
	}
	sh.hits[h.ID] = ph
	sh.mu.Unlock()
	m.hitsPosted.Add(1)
	for i := 0; i < h.Assignments; i++ {
		m.dispatch(h, 0)
	}
	return nil
}

// dispatch asks the pool for one assignment's claim and schedules its
// completion.
func (m *Marketplace) dispatch(h *hit.HIT, attempt int) {
	claim, ok := m.pool.Claim(h, m.clock.Now())
	if !ok || !m.workerAllowed(claim.WorkerID) {
		if attempt >= m.MaxRetries {
			m.assignmentFailed(h.ID, fmt.Errorf("mturk: no eligible worker after %d attempts", attempt))
			return
		}
		m.clock.Schedule(m.RetryBackoff, func() { m.dispatch(h, attempt+1) })
		return
	}
	m.clock.Schedule(claim.Delay, func() {
		ans, err := claim.Answer()
		if err != nil {
			// Abandoned/rejected assignment: repost.
			if attempt >= m.MaxRetries {
				m.assignmentFailed(h.ID, fmt.Errorf("mturk: assignment abandoned %d times: %v", attempt+1, err))
				return
			}
			m.clock.Schedule(m.RetryBackoff, func() { m.dispatch(h, attempt+1) })
			return
		}
		ans.WorkerID = claim.WorkerID
		m.complete(h.ID, ans, false)
	})
}

// complete records one finished assignment and notifies the requester.
func (m *Marketplace) complete(hitID string, ans hit.Answers, external bool) {
	sh := m.shardFor(hitID)
	sh.mu.Lock()
	ph, ok := sh.hits[hitID]
	if !ok || !ph.status.Open() {
		// Slot already filled (e.g. an external submission raced a
		// simulated worker): the extra work is discarded unpaid,
		// like MTurk rejecting a submission on an expired HIT.
		sh.mu.Unlock()
		return
	}
	ph.status.Completed++
	ph.status.Spent += budget.Cents(ph.status.HIT.RewardCents)
	now := m.clock.Now()
	disposed := false
	if !ph.status.Open() {
		ph.status.DoneAt = now
		if m.autoDispose.Load() {
			delete(sh.hits, hitID)
			disposed = true
		}
	}
	questions := ph.status.HIT.QuestionCount()
	reward := ph.status.HIT.RewardCents
	cb := ph.callback
	final := ph.status
	sh.mu.Unlock()
	if disposed {
		m.cfgMu.RLock()
		observer := m.onDisposed
		m.cfgMu.RUnlock()
		if observer != nil {
			observer(final)
		}
	}
	m.assignmentsCompleted.Add(1)
	m.questionsAnswered.Add(int64(questions))
	m.spentCents.Add(reward)
	if external {
		m.externalSubmissions.Add(1)
	}
	if cb != nil {
		cb(AssignmentResult{HITID: hitID, Answers: ans, SubmittedAt: now, External: external})
	}
}

func (m *Marketplace) assignmentFailed(hitID string, err error) {
	m.cfgMu.RLock()
	fn := m.onError
	m.cfgMu.RUnlock()
	if fn != nil {
		fn(hitID, err)
	}
}

// ExtendAssignments adds extra assignment slots to a posted HIT (like
// MTurk's CreateAdditionalAssignmentsForHIT) and dispatches claims for
// them. A HIT whose posted assignments have all completed but that has
// not been disposed may still be extended — MTurk allows the same on
// Reviewable HITs, and the adaptive redundancy loop decides to extend
// exactly when the last assignment arrives — the extension simply
// reopens it (DoneAt is rewritten when it closes again). Unknown (or
// auto-disposed) HITs fail; the posted HIT itself is never mutated —
// the extension lives in the status.
func (m *Marketplace) ExtendAssignments(hitID string, extra int) error {
	if extra <= 0 {
		return fmt.Errorf("mturk: extend HIT %s by %d assignments", hitID, extra)
	}
	sh := m.shardFor(hitID)
	sh.mu.Lock()
	ph, ok := sh.hits[hitID]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("mturk: unknown HIT %s", hitID)
	}
	ph.status.Extended += extra
	h := ph.status.HIT
	sh.mu.Unlock()
	for i := 0; i < extra; i++ {
		m.dispatch(h, 0)
	}
	return nil
}

// SubmitExternal accepts an assignment from a live human (the demo's
// audience task-completion interface). It fails when the HIT is unknown
// or already fully assigned.
func (m *Marketplace) SubmitExternal(hitID string, ans hit.Answers) error {
	sh := m.shardFor(hitID)
	sh.mu.Lock()
	ph, ok := sh.hits[hitID]
	open := ok && ph.status.Open()
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("mturk: unknown HIT %s", hitID)
	}
	if !open {
		return fmt.Errorf("mturk: HIT %s has no open assignments", hitID)
	}
	m.complete(hitID, ans, true)
	return nil
}

// Status returns a HIT's lifecycle snapshot.
func (m *Marketplace) Status(hitID string) (HITStatus, bool) {
	sh := m.shardFor(hitID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ph, ok := sh.hits[hitID]
	if !ok {
		return HITStatus{}, false
	}
	return ph.status, true
}

// OpenHITs lists HITs with outstanding assignments, oldest first, for
// the task-completion UI. Each shard is snapshotted under its own lock;
// the merge and sort run outside all locks, so dashboard polling never
// stalls query execution.
func (m *Marketplace) OpenHITs() []HITStatus {
	return m.snapshot(true)
}

// AllHITs lists every posted HIT, oldest first.
func (m *Marketplace) AllHITs() []HITStatus {
	return m.snapshot(false)
}

func (m *Marketplace) snapshot(openOnly bool) []HITStatus {
	var out []HITStatus
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, ph := range sh.hits {
			if !openOnly || ph.status.Open() {
				out = append(out, ph.status)
			}
		}
		sh.mu.Unlock()
	}
	sortStatuses(out)
	return out
}

func sortStatuses(ss []HITStatus) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].PostedAt != ss[j].PostedAt {
			return ss[i].PostedAt < ss[j].PostedAt
		}
		return ss[i].HIT.ID < ss[j].HIT.ID
	})
}

// Stats returns marketplace-wide counters.
func (m *Marketplace) Stats() Stats {
	return Stats{
		HITsPosted:           int(m.hitsPosted.Load()),
		AssignmentsCompleted: int(m.assignmentsCompleted.Load()),
		QuestionsAnswered:    int(m.questionsAnswered.Load()),
		SpentCents:           budget.Cents(m.spentCents.Load()),
		ExternalSubmissions:  int(m.externalSubmissions.Load()),
	}
}
