package mturk

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/hit"
)

// Claim is a worker pool's promise to complete one assignment.
type Claim struct {
	WorkerID string
	// Delay is the virtual time from now until submission (queueing
	// plus work time).
	Delay time.Duration
	// Answer produces the worker's answers; it runs at submission time.
	Answer func() (hit.Answers, error)
}

// WorkerPool supplies workers for posted HITs. Implemented by the
// synthetic crowd (internal/crowd) and by test fakes.
type WorkerPool interface {
	// Claim asks the pool to work on h starting at virtual time now.
	// ok=false means no worker is currently willing (the marketplace
	// retries after a backoff).
	Claim(h *hit.HIT, now VirtualTime) (Claim, bool)
}

// AssignmentResult is delivered to the requester for every completed
// assignment.
type AssignmentResult struct {
	HITID       string
	Answers     hit.Answers
	SubmittedAt VirtualTime
	// External marks submissions from the live task-completion UI
	// rather than the simulated crowd.
	External bool
}

// HITStatus describes a posted HIT's lifecycle for the dashboard.
type HITStatus struct {
	HIT       *hit.HIT
	PostedAt  VirtualTime
	Completed int
	DoneAt    VirtualTime // valid when Completed == Assignments
	Spent     budget.Cents
}

// Open reports whether assignments remain outstanding.
func (s HITStatus) Open() bool { return s.Completed < s.HIT.Assignments }

type postedHIT struct {
	status   HITStatus
	callback func(AssignmentResult)
}

// Stats are marketplace-wide counters for the dashboard.
type Stats struct {
	HITsPosted           int
	AssignmentsCompleted int
	QuestionsAnswered    int // assignments × batched questions
	SpentCents           budget.Cents
	ExternalSubmissions  int
}

// Marketplace accepts HITs and routes them to a worker pool under the
// virtual clock, mimicking MTurk's requester API surface.
type Marketplace struct {
	clock *Clock
	pool  WorkerPool

	// RetryBackoff is the virtual delay before re-asking the pool when
	// no worker is available or a worker abandons an assignment.
	RetryBackoff time.Duration
	// MaxRetries bounds abandons per assignment before the HIT errors
	// out. At least 1 attempt is always made.
	MaxRetries int

	mu      sync.Mutex
	hits    map[string]*postedHIT
	nextID  int
	stats   Stats
	onError func(hitID string, err error)
	// workerFilter, when set, vets each claim's worker; rejected
	// claims are re-dispatched after the retry backoff (like an MTurk
	// qualification requirement).
	workerFilter func(workerID string) bool
}

// NewMarketplace wires a marketplace to a clock and worker pool.
func NewMarketplace(clock *Clock, pool WorkerPool) *Marketplace {
	return &Marketplace{
		clock:        clock,
		pool:         pool,
		RetryBackoff: 30 * time.Second,
		MaxRetries:   10,
		hits:         make(map[string]*postedHIT),
	}
}

// Clock returns the marketplace's virtual clock.
func (m *Marketplace) Clock() *Clock { return m.clock }

// SetErrorHandler installs a callback for assignments that exhaust their
// retries; the default drops them silently counted in stats.
func (m *Marketplace) SetErrorHandler(fn func(hitID string, err error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onError = fn
}

// SetWorkerFilter installs a qualification predicate: claims by workers
// it rejects are re-dispatched to someone else. nil accepts everyone.
func (m *Marketplace) SetWorkerFilter(fn func(workerID string) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workerFilter = fn
}

func (m *Marketplace) workerAllowed(workerID string) bool {
	m.mu.Lock()
	fn := m.workerFilter
	m.mu.Unlock()
	return fn == nil || fn(workerID)
}

// NewHITID issues a process-unique HIT identifier.
func (m *Marketplace) NewHITID() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return fmt.Sprintf("HIT-%06d", m.nextID)
}

// Post publishes a HIT. onAssignment is invoked (on the clock goroutine)
// once per completed assignment, h.Assignments times in total unless
// retries are exhausted.
func (m *Marketplace) Post(h *hit.HIT, onAssignment func(AssignmentResult)) error {
	if err := h.Validate(); err != nil {
		return err
	}
	now := m.clock.Now()
	ph := &postedHIT{
		status:   HITStatus{HIT: h, PostedAt: now},
		callback: onAssignment,
	}
	m.mu.Lock()
	if _, dup := m.hits[h.ID]; dup {
		m.mu.Unlock()
		return fmt.Errorf("mturk: duplicate HIT id %s", h.ID)
	}
	m.hits[h.ID] = ph
	m.stats.HITsPosted++
	m.mu.Unlock()
	for i := 0; i < h.Assignments; i++ {
		m.dispatch(h, 0)
	}
	return nil
}

// dispatch asks the pool for one assignment's claim and schedules its
// completion.
func (m *Marketplace) dispatch(h *hit.HIT, attempt int) {
	claim, ok := m.pool.Claim(h, m.clock.Now())
	if !ok || !m.workerAllowed(claim.WorkerID) {
		if attempt >= m.MaxRetries {
			m.assignmentFailed(h.ID, fmt.Errorf("mturk: no eligible worker after %d attempts", attempt))
			return
		}
		m.clock.Schedule(m.RetryBackoff, func() { m.dispatch(h, attempt+1) })
		return
	}
	m.clock.Schedule(claim.Delay, func() {
		ans, err := claim.Answer()
		if err != nil {
			// Abandoned/rejected assignment: repost.
			if attempt >= m.MaxRetries {
				m.assignmentFailed(h.ID, fmt.Errorf("mturk: assignment abandoned %d times: %v", attempt+1, err))
				return
			}
			m.clock.Schedule(m.RetryBackoff, func() { m.dispatch(h, attempt+1) })
			return
		}
		ans.WorkerID = claim.WorkerID
		m.complete(h.ID, ans, false)
	})
}

// complete records one finished assignment and notifies the requester.
func (m *Marketplace) complete(hitID string, ans hit.Answers, external bool) {
	m.mu.Lock()
	ph, ok := m.hits[hitID]
	if !ok || !ph.status.Open() {
		// Slot already filled (e.g. an external submission raced a
		// simulated worker): the extra work is discarded unpaid,
		// like MTurk rejecting a submission on an expired HIT.
		m.mu.Unlock()
		return
	}
	ph.status.Completed++
	ph.status.Spent += budget.Cents(ph.status.HIT.RewardCents)
	now := m.clock.Now()
	if !ph.status.Open() {
		ph.status.DoneAt = now
	}
	m.stats.AssignmentsCompleted++
	m.stats.QuestionsAnswered += ph.status.HIT.QuestionCount()
	m.stats.SpentCents += budget.Cents(ph.status.HIT.RewardCents)
	if external {
		m.stats.ExternalSubmissions++
	}
	cb := ph.callback
	m.mu.Unlock()
	if cb != nil {
		cb(AssignmentResult{HITID: hitID, Answers: ans, SubmittedAt: now, External: external})
	}
}

func (m *Marketplace) assignmentFailed(hitID string, err error) {
	m.mu.Lock()
	fn := m.onError
	m.mu.Unlock()
	if fn != nil {
		fn(hitID, err)
	}
}

// SubmitExternal accepts an assignment from a live human (the demo's
// audience task-completion interface). It fails when the HIT is unknown
// or already fully assigned.
func (m *Marketplace) SubmitExternal(hitID string, ans hit.Answers) error {
	m.mu.Lock()
	ph, ok := m.hits[hitID]
	open := ok && ph.status.Open()
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("mturk: unknown HIT %s", hitID)
	}
	if !open {
		return fmt.Errorf("mturk: HIT %s has no open assignments", hitID)
	}
	m.complete(hitID, ans, true)
	return nil
}

// Status returns a HIT's lifecycle snapshot.
func (m *Marketplace) Status(hitID string) (HITStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ph, ok := m.hits[hitID]
	if !ok {
		return HITStatus{}, false
	}
	return ph.status, true
}

// OpenHITs lists HITs with outstanding assignments, oldest first, for
// the task-completion UI.
func (m *Marketplace) OpenHITs() []HITStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []HITStatus
	for _, ph := range m.hits {
		if ph.status.Open() {
			out = append(out, ph.status)
		}
	}
	sortStatuses(out)
	return out
}

// AllHITs lists every posted HIT, oldest first.
func (m *Marketplace) AllHITs() []HITStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HITStatus, 0, len(m.hits))
	for _, ph := range m.hits {
		out = append(out, ph.status)
	}
	sortStatuses(out)
	return out
}

func sortStatuses(ss []HITStatus) {
	// Insertion sort keeps this dependency-free and the lists are
	// dashboard-sized.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0; j-- {
			a, b := ss[j-1], ss[j]
			if a.PostedAt < b.PostedAt || (a.PostedAt == b.PostedAt && a.HIT.ID <= b.HIT.ID) {
				break
			}
			ss[j-1], ss[j] = b, a
		}
	}
}

// Stats returns marketplace-wide counters.
func (m *Marketplace) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
