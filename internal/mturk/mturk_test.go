package mturk

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hit"
	"repro/internal/qlang"
	"repro/internal/relation"
)

func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.Schedule(3*time.Minute, func() { got = append(got, 3) })
	c.Schedule(1*time.Minute, func() { got = append(got, 1) })
	c.Schedule(2*time.Minute, func() { got = append(got, 2) })
	for c.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if c.Now().Minutes() != 3 {
		t.Fatalf("now = %v", c.Now().Minutes())
	}
}

func TestClockSameTimeFIFO(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Minute, func() { got = append(got, i) })
	}
	for c.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestClockEventsScheduleEvents(t *testing.T) {
	c := NewClock()
	var fired bool
	c.Schedule(time.Minute, func() {
		c.Schedule(time.Minute, func() { fired = true })
	})
	for c.Step() {
	}
	if !fired {
		t.Fatal("nested event did not run")
	}
	if c.Now().Minutes() != 2 {
		t.Fatalf("now = %v", c.Now().Minutes())
	}
}

func TestClockNegativeDelay(t *testing.T) {
	c := NewClock()
	ran := false
	c.Schedule(-time.Hour, func() { ran = true })
	c.Step()
	if !ran || c.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, c.Now())
	}
}

func TestClockRunStopsWhenDone(t *testing.T) {
	c := NewClock()
	var count int32
	var done int32
	c.Schedule(time.Second, func() { atomic.AddInt32(&count, 1); atomic.StoreInt32(&done, 1) })
	finished := make(chan struct{})
	go func() {
		c.Run(func() bool { return atomic.LoadInt32(&done) == 1 })
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop")
	}
	if atomic.LoadInt32(&count) != 1 {
		t.Fatal("event did not run")
	}
}

func TestClockRunWaitsForLateSchedules(t *testing.T) {
	c := NewClock()
	var done int32
	finished := make(chan struct{})
	go func() {
		c.Run(func() bool { return atomic.LoadInt32(&done) == 1 })
		close(finished)
	}()
	// Schedule from outside after Run has gone idle.
	time.Sleep(5 * time.Millisecond)
	c.Schedule(time.Minute, func() { atomic.StoreInt32(&done, 1) })
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not pick up late schedule")
	}
}

func TestClockClose(t *testing.T) {
	c := NewClock()
	finished := make(chan struct{})
	go func() {
		c.Run(func() bool { return false })
		close(finished)
	}()
	time.Sleep(2 * time.Millisecond)
	c.Close()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not observe Close")
	}
	if !c.Closed() {
		t.Error("Closed() = false")
	}
	// Scheduling after close is a no-op.
	c.Schedule(time.Second, func() { t.Error("post-close event ran") })
	if c.Pending() != 0 {
		t.Error("post-close schedule accepted")
	}
}

// fakePool answers instantly with a fixed boolean per item.
type fakePool struct {
	mu       sync.Mutex
	claims   int
	noWorker int // first N claims report no worker
	abandons int // first N answers error
	delay    time.Duration
}

func (p *fakePool) Claim(h *hit.HIT, now VirtualTime) (Claim, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.claims++
	if p.noWorker > 0 {
		p.noWorker--
		return Claim{}, false
	}
	abandon := false
	if p.abandons > 0 {
		p.abandons--
		abandon = true
	}
	d := p.delay
	if d == 0 {
		d = time.Minute
	}
	return Claim{
		WorkerID: "w1",
		Delay:    d,
		Answer: func() (hit.Answers, error) {
			if abandon {
				return hit.Answers{}, errors.New("abandoned")
			}
			vals := make(map[string]relation.Value)
			for _, k := range h.Keys() {
				vals[k] = relation.NewBool(true)
			}
			return hit.Answers{Values: vals}, nil
		},
	}, true
}

func filterHIT(id string, assignments int) *hit.HIT {
	return &hit.HIT{
		ID: id, Task: "isCat", Type: qlang.TaskFilter,
		Question: "cat?", Response: qlang.Response{Kind: qlang.ResponseYesNo},
		Items:       []hit.Item{{Key: "k1", Args: []relation.Value{relation.NewImage("x.png")}}},
		RewardCents: 2, Assignments: assignments,
	}
}

func pump(t *testing.T, c *Clock, stop func() bool) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		c.Run(stop)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("clock pump stuck")
	}
}

func TestMarketplacePostAndComplete(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	var mu sync.Mutex
	var results []AssignmentResult
	h := filterHIT(m.NewHITID(), 3)
	err := m.Post(h, func(r AssignmentResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	pump(t, clock, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(results) == 3
	})
	st, ok := m.Status(h.ID)
	if !ok || st.Completed != 3 || st.Open() {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
	if st.Spent != 6 {
		t.Fatalf("spent = %v", st.Spent)
	}
	if st.DoneAt.Minutes() != 1 {
		t.Fatalf("done at %v minutes (parallel workers should finish together)", st.DoneAt.Minutes())
	}
	stats := m.Stats()
	if stats.HITsPosted != 1 || stats.AssignmentsCompleted != 3 || stats.SpentCents != 6 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestMarketplaceValidatesAndRejectsDuplicates(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	bad := filterHIT("", 1)
	if err := m.Post(bad, nil); err == nil {
		t.Error("invalid HIT accepted")
	}
	h := filterHIT("HIT-X", 1)
	if err := m.Post(h, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Post(filterHIT("HIT-X", 1), nil); err == nil {
		t.Error("duplicate HIT id accepted")
	}
}

func TestMarketplaceRetriesNoWorker(t *testing.T) {
	clock := NewClock()
	pool := &fakePool{noWorker: 2}
	m := NewMarketplace(clock, pool)
	var done int32
	h := filterHIT(m.NewHITID(), 1)
	_ = m.Post(h, func(AssignmentResult) { atomic.StoreInt32(&done, 1) })
	pump(t, clock, func() bool { return atomic.LoadInt32(&done) == 1 })
	// 2 failed claims + 1 success.
	if pool.claims != 3 {
		t.Fatalf("claims = %d", pool.claims)
	}
	// Latency = 2 backoffs + 1 minute of work.
	st, _ := m.Status(h.ID)
	want := 2*m.RetryBackoff + time.Minute
	if st.DoneAt.Duration() != want {
		t.Fatalf("done at %v, want %v", st.DoneAt.Duration(), want)
	}
}

func TestMarketplaceRetriesAbandonment(t *testing.T) {
	clock := NewClock()
	pool := &fakePool{abandons: 1}
	m := NewMarketplace(clock, pool)
	var done int32
	h := filterHIT(m.NewHITID(), 1)
	_ = m.Post(h, func(AssignmentResult) { atomic.StoreInt32(&done, 1) })
	pump(t, clock, func() bool { return atomic.LoadInt32(&done) == 1 })
	st, _ := m.Status(h.ID)
	if st.Completed != 1 {
		t.Fatalf("completed = %d", st.Completed)
	}
}

func TestMarketplaceExhaustsRetries(t *testing.T) {
	clock := NewClock()
	pool := &fakePool{noWorker: 1 << 30}
	m := NewMarketplace(clock, pool)
	m.MaxRetries = 3
	var failed int32
	m.SetErrorHandler(func(hitID string, err error) { atomic.StoreInt32(&failed, 1) })
	h := filterHIT(m.NewHITID(), 1)
	_ = m.Post(h, func(AssignmentResult) { t.Error("unexpected completion") })
	pump(t, clock, func() bool { return atomic.LoadInt32(&failed) == 1 })
	st, _ := m.Status(h.ID)
	if st.Completed != 0 || !st.Open() {
		t.Fatalf("status = %+v", st)
	}
}

func TestSubmitExternal(t *testing.T) {
	clock := NewClock()
	// Simulated workers are slow so the external submission wins.
	m := NewMarketplace(clock, &fakePool{delay: time.Hour})
	var mu sync.Mutex
	var results []AssignmentResult
	h := filterHIT(m.NewHITID(), 1)
	_ = m.Post(h, func(r AssignmentResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	ans := hit.Answers{Values: map[string]relation.Value{"k1": relation.NewBool(false)}}
	if err := m.SubmitExternal(h.ID, ans); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(results)
	ext := n == 1 && results[0].External
	mu.Unlock()
	if n != 1 || !ext {
		t.Fatalf("results = %d external=%v", n, ext)
	}
	// HIT is now fully assigned: further externals fail...
	if err := m.SubmitExternal(h.ID, ans); err == nil {
		t.Error("submit on filled HIT accepted")
	}
	if err := m.SubmitExternal("nope", ans); err == nil {
		t.Error("submit on unknown HIT accepted")
	}
	// ...and the late simulated worker is discarded unpaid.
	for clock.Step() {
	}
	st, _ := m.Status(h.ID)
	if st.Completed != 1 || st.Spent != 2 {
		t.Fatalf("status after late worker = %+v", st)
	}
}

func TestOpenAndAllHITs(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	h1 := filterHIT(m.NewHITID(), 1)
	h2 := filterHIT(m.NewHITID(), 1)
	_ = m.Post(h1, nil)
	_ = m.Post(h2, nil)
	if got := len(m.OpenHITs()); got != 2 {
		t.Fatalf("open = %d", got)
	}
	for clock.Step() {
	}
	if got := len(m.OpenHITs()); got != 0 {
		t.Fatalf("open after completion = %d", got)
	}
	all := m.AllHITs()
	if len(all) != 2 || all[0].HIT.ID != h1.ID {
		t.Fatalf("all = %v", all)
	}
	if _, ok := m.Status("nope"); ok {
		t.Error("unknown status lookup succeeded")
	}
}

func TestVirtualTimeHelpers(t *testing.T) {
	v := VirtualTime(90 * time.Second)
	if v.Minutes() != 1.5 || v.Duration() != 90*time.Second {
		t.Fatalf("helpers = %v %v", v.Minutes(), v.Duration())
	}
}
