package mturk

import (
	"sync"
	"time"
)

// pace holds the optional real-time rate of a clock. Zero means "run as
// fast as possible" (the default for tests and benchmarks).
type pace struct {
	mu     sync.Mutex
	factor float64 // real seconds per virtual second
}

func (p *pace) get() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.factor
}

// SetPace makes Run sleep factor real seconds per virtual second before
// executing each event (0 restores full speed). The live demo dashboard
// uses this so HITs stay open long enough for the audience to answer.
func (c *Clock) SetPace(factor float64) {
	c.pace.mu.Lock()
	c.pace.factor = factor
	c.pace.mu.Unlock()
	c.mu.Lock()
	c.wakeLocked()
	c.mu.Unlock()
}

// peekNext reports the earliest pending event time.
func (c *Clock) peekNext() (VirtualTime, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].at, true
}

// paceWait sleeps toward the next event at the configured rate, in
// small chunks so newly scheduled (earlier) events and Close wake it.
// While sleeping, virtual time advances smoothly so dashboards show
// motion between events. It reports false when the clock closed.
func (c *Clock) paceWait(factor float64) bool {
	at, ok := c.peekNext()
	if !ok {
		return true
	}
	delta := at - c.Now()
	if delta <= 0 {
		return true
	}
	sleep := time.Duration(float64(delta) * factor)
	const maxChunk = 10 * time.Millisecond
	if sleep > maxChunk {
		sleep = maxChunk
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	wake := c.wake
	c.mu.Unlock()
	select {
	case <-wake:
	case <-time.After(sleep):
		c.mu.Lock()
		adv := VirtualTime(float64(sleep) / factor)
		if c.now+adv > at {
			adv = at - c.now
		}
		if adv > 0 {
			c.now += adv
		}
		c.mu.Unlock()
	}
	return true
}
