package mturk

import (
	"sync"
	"time"
)

// pace holds the optional real-time rate of a clock. Zero means "run as
// fast as possible" (the default for tests and benchmarks).
type pace struct {
	mu     sync.Mutex
	factor float64 // real seconds per virtual second
}

func (p *pace) get() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.factor
}

// SetPace makes Run sleep factor real seconds per virtual second before
// executing each event (0 restores full speed). The live demo dashboard
// uses this so HITs stay open long enough for the audience to answer.
func (c *Clock) SetPace(factor float64) {
	c.pace.mu.Lock()
	c.pace.factor = factor
	c.pace.mu.Unlock()
	c.wakeAll()
}

// peekNext reports the earliest pending event time across all shards.
func (c *Clock) peekNext() (VirtualTime, bool) {
	var bestAt VirtualTime
	found := false
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.events) > 0 {
			if at := sh.events[0].at; !found || at < bestAt {
				bestAt, found = at, true
			}
		}
		sh.mu.Unlock()
	}
	return bestAt, found
}

// paceWait sleeps toward the next event at the configured rate, in
// small chunks so newly scheduled (earlier) events and Close wake it.
// While sleeping, virtual time advances smoothly so dashboards show
// motion between events. It reports false when the clock closed.
func (c *Clock) paceWait(factor float64) bool {
	at, ok := c.peekNext()
	if !ok {
		return true
	}
	delta := at - c.Now()
	if delta <= 0 {
		return true
	}
	sleep := time.Duration(float64(delta) * factor)
	if sleep <= 0 {
		// The gap is smaller than the pace can resolve (a zero-length
		// sleep fires immediately and advances nothing): jump straight
		// to the event instead of spinning on empty timers.
		if now := c.Now(); at > now {
			c.now.Store(int64(at))
		}
		return true
	}
	const maxChunk = 10 * time.Millisecond
	if sleep > maxChunk {
		sleep = maxChunk
	}
	if c.closed.Load() {
		return false
	}
	c.waiting.Store(true)
	select {
	case <-c.wake:
	case <-time.After(sleep):
		adv := VirtualTime(float64(sleep) / factor)
		now := c.Now()
		if now+adv > at {
			adv = at - now
		}
		if adv > 0 {
			c.now.Store(int64(now + adv))
		}
	}
	c.waiting.Store(false)
	return true
}
