package mturk

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClockManyEqualTimeEventsFIFO schedules enough same-time events to
// span every shard queue several times over and asserts the merged
// execution order is exactly schedule order — the (time, seq) merge the
// package comment guarantees.
func TestClockManyEqualTimeEventsFIFO(t *testing.T) {
	c := NewClock()
	const n = 1000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		c.Schedule(time.Minute, func() { got = append(got, i) })
	}
	for c.Step() {
	}
	if len(got) != n {
		t.Fatalf("ran %d of %d events", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d ran at position %d (cross-shard merge broke FIFO)", v, i)
		}
	}
}

// TestClockInterleavedDelaysOrdered mixes delays so consecutive seqs
// land at different times on different shards and asserts global time
// order wins over shard placement.
func TestClockInterleavedDelaysOrdered(t *testing.T) {
	c := NewClock()
	var got []time.Duration
	delays := []time.Duration{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	for _, d := range delays {
		d := d
		c.Schedule(d*time.Minute, func() { got = append(got, d) })
	}
	for c.Step() {
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("events out of time order: %v", got)
		}
	}
}

// TestAutoDisposeDropsCompletedHITs checks the production retention
// mode: completed HITs leave the shard maps (Status/AllHITs no longer
// see them), the observer receives each final status exactly once, and
// the atomic counters still account for everything.
func TestAutoDisposeDropsCompletedHITs(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	var mu sync.Mutex
	var finals []HITStatus
	m.SetAutoDispose(true, func(hs HITStatus) {
		mu.Lock()
		finals = append(finals, hs)
		mu.Unlock()
	})
	var done atomic.Int64
	const hits = 5
	ids := make([]string, 0, hits)
	for i := 0; i < hits; i++ {
		h := filterHIT(m.NewHITID(), 2)
		ids = append(ids, h.ID)
		if err := m.Post(h, func(AssignmentResult) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, clock, func() bool { return done.Load() == 2*hits })
	mu.Lock()
	defer mu.Unlock()
	if len(finals) != hits {
		t.Fatalf("observer saw %d disposals, want %d", len(finals), hits)
	}
	for _, hs := range finals {
		if hs.Open() || hs.Completed != 2 {
			t.Fatalf("disposed status not final: %+v", hs)
		}
	}
	for _, id := range ids {
		if _, ok := m.Status(id); ok {
			t.Fatalf("HIT %s still visible after auto-dispose", id)
		}
	}
	if got := len(m.AllHITs()); got != 0 {
		t.Fatalf("AllHITs = %d entries after auto-dispose", got)
	}
	st := m.Stats()
	if st.HITsPosted != hits || st.AssignmentsCompleted != 2*hits {
		t.Fatalf("stats lost history: %+v", st)
	}
}

// TestDisposeRemovesHIT checks manual disposal (MTurk DeleteHIT).
func TestDisposeRemovesHIT(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	var done atomic.Int64
	h := filterHIT(m.NewHITID(), 1)
	if err := m.Post(h, func(AssignmentResult) { done.Add(1) }); err != nil {
		t.Fatal(err)
	}
	pump(t, clock, func() bool { return done.Load() == 1 })
	hs, ok := m.Dispose(h.ID)
	if !ok || hs.Completed != 1 {
		t.Fatalf("Dispose = %+v, %v", hs, ok)
	}
	if _, ok := m.Dispose(h.ID); ok {
		t.Fatal("second Dispose succeeded")
	}
	if _, ok := m.Status(h.ID); ok {
		t.Fatal("Status sees disposed HIT")
	}
}

// TestConcurrentPostsAcrossShards hammers Post from many goroutines
// while the pump completes assignments — the contention pattern the
// sharding exists for. Run under -race this doubles as the marketplace's
// data-race probe.
func TestConcurrentPostsAcrossShards(t *testing.T) {
	clock := NewClock()
	m := NewMarketplace(clock, &fakePool{})
	const goroutines = 8
	const perG = 200
	var done atomic.Int64
	stopped := make(chan struct{})
	go func() {
		clock.Run(func() bool { return done.Load() == goroutines*perG })
		close(stopped)
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h := filterHIT(m.NewHITID(), 1)
				if err := m.Post(h, func(AssignmentResult) { done.Add(1) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("pump did not finish")
	}
	st := m.Stats()
	if st.HITsPosted != goroutines*perG || st.AssignmentsCompleted != goroutines*perG {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(m.AllHITs()); got != goroutines*perG {
		t.Fatalf("AllHITs = %d, want %d", got, goroutines*perG)
	}
}

// TestHITIDFormatStable pins the ID format the dashboard and demos show.
func TestHITIDFormatStable(t *testing.T) {
	m := NewMarketplace(NewClock(), &fakePool{})
	if id := m.NewHITID(); id != "HIT-000001" {
		t.Fatalf("first id = %q", id)
	}
	for i := 0; i < 999997; i++ {
		m.NewHITID()
	}
	if id := m.NewHITID(); id != "HIT-999999" {
		t.Fatalf("id 999999 = %q", id)
	}
	if id := m.NewHITID(); id != "HIT-1000000" {
		t.Fatalf("overflow id = %q", id)
	}
	if want := fmt.Sprintf("HIT-%06d", 1000001); m.NewHITID() != want {
		t.Fatalf("fmt parity broken at %s", want)
	}
}
