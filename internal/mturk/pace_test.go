package mturk

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPacedRunDelaysEvents(t *testing.T) {
	c := NewClock()
	c.SetPace(0.02) // 20ms real per virtual second
	var done int32
	c.Schedule(2*time.Second, func() { atomic.StoreInt32(&done, 1) })
	start := time.Now()
	finished := make(chan struct{})
	go func() {
		c.Run(func() bool { return atomic.LoadInt32(&done) == 1 })
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("paced run stuck")
	}
	elapsed := time.Since(start)
	// 2 virtual seconds at 0.02 real/virtual ≈ 40ms real.
	if elapsed < 20*time.Millisecond {
		t.Fatalf("paced event fired too early: %v", elapsed)
	}
}

func TestPacedClockAdvancesSmoothly(t *testing.T) {
	c := NewClock()
	c.SetPace(0.01)
	c.Schedule(10*time.Second, func() {})
	go c.Run(func() bool { return false })
	defer c.Close()
	time.Sleep(30 * time.Millisecond)
	if c.Now() == 0 {
		t.Fatal("paced clock should creep forward between events")
	}
}

func TestSetPaceZeroRestoresFullSpeed(t *testing.T) {
	c := NewClock()
	c.SetPace(10) // absurdly slow
	c.SetPace(0)  // back to full speed
	var done int32
	c.Schedule(time.Hour, func() { atomic.StoreInt32(&done, 1) })
	finished := make(chan struct{})
	go func() {
		c.Run(func() bool { return atomic.LoadInt32(&done) == 1 })
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("full-speed run stuck after pace reset")
	}
}

func TestCloseWakesPacedRun(t *testing.T) {
	c := NewClock()
	c.SetPace(100) // very slow
	c.Schedule(time.Hour, func() {})
	finished := make(chan struct{})
	go func() {
		c.Run(func() bool { return false })
		close(finished)
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not stop a paced run")
	}
}
