package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/exec"
)

// execBench is the BENCH_exec.json schema: one entry per executor
// pipeline from exec.BenchSuite, measured live and compared against the
// committed pre-iterator (goroutine-per-operator) baseline.
type execBench struct {
	Pipelines []execPipeline `json:"pipelines"`
}

type execPipeline struct {
	Name     string `json:"name"`
	Rows     int    `json:"rows"`
	NsOp     int64  `json:"ns_op"`
	BytesOp  int64  `json:"bytes_op"`
	AllocsOp int64  `json:"allocs_op"`
	// PeakTuplesResident is the high-water mark of tuples buffered in
	// queues and operator barriers during one execution — the executor's
	// steady-state memory footprint in tuples.
	PeakTuplesResident int64 `json:"peak_tuples_resident"`
	// Baseline* are the pre-refactor executor's committed measurements.
	BaselineNsOp     float64 `json:"baseline_ns_op"`
	BaselineAllocsOp int64   `json:"baseline_allocs_op"`
	Speedup          float64 `json:"speedup"`
	AllocReduction   float64 `json:"alloc_reduction"`
}

// runExecBench benchmarks every executor pipeline via testing.Benchmark
// and writes BENCH_exec.json next to the other BENCH artifacts.
func runExecBench() error {
	var out execBench
	for _, c := range exec.BenchSuite() {
		node, err := c.Plan()
		if err != nil {
			return fmt.Errorf("EXEC %s: %v", c.Name, err)
		}
		// One measured run for the footprint gauge.
		q, err := c.Run(node)
		if err != nil {
			return fmt.Errorf("EXEC %s: %v", c.Name, err)
		}
		peak := q.PeakTuplesResident()

		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(node); err != nil {
					b.Fatal(err)
				}
			}
		})
		p := execPipeline{
			Name:               c.Name,
			Rows:               c.WantRows,
			NsOp:               r.NsPerOp(),
			BytesOp:            r.AllocedBytesPerOp(),
			AllocsOp:           r.AllocsPerOp(),
			PeakTuplesResident: peak,
			BaselineNsOp:       c.BaselineNsOp,
			BaselineAllocsOp:   c.BaselineAllocs,
		}
		if p.NsOp > 0 {
			p.Speedup = p.BaselineNsOp / float64(p.NsOp)
		}
		if p.BaselineAllocsOp > 0 {
			p.AllocReduction = 1 - float64(p.AllocsOp)/float64(p.BaselineAllocsOp)
		}
		out.Pipelines = append(out.Pipelines, p)
		fmt.Printf("EXEC %s: %d ns/op, %d B/op, %d allocs/op, peak %d tuples resident (%.2fx vs pre-iterator, %.0f%% fewer allocs)\n",
			p.Name, p.NsOp, p.BytesOp, p.AllocsOp, p.PeakTuplesResident, p.Speedup, 100*p.AllocReduction)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_exec.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_exec.json")
	return nil
}
