// Command qurk-bench regenerates every experiment table from
// EXPERIMENTS.md (the paper's evaluation artifacts) and prints them.
//
//	qurk-bench                  # all experiments, default scale
//	qurk-bench -only E3 -seed 7 # one experiment, custom seed
//	qurk-bench -scale 3         # 3× larger workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "crowd and workload random seed")
	only := flag.String("only", "", "run a single experiment (E1..E10)")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	flag.Parse()
	if *scale < 1 {
		*scale = 1
	}
	s := *scale

	runners := []struct {
		id  string
		run func() experiments.Table
	}{
		{"E1", func() experiments.Table { return experiments.E1Pipeline(*seed) }},
		{"E2", func() experiments.Table { return experiments.E2Cache(8*s, *seed) }},
		{"E3", func() experiments.Table { return experiments.E3JoinInterfaces(8*s, 16*s, *seed) }},
		{"E4", func() experiments.Table { return experiments.E4TaskModel(4, 30*s, *seed) }},
		{"E5", func() experiments.Table { return experiments.E5PreFilter(6*s, 14*s, *seed) }},
		{"E6", func() experiments.Table { return experiments.E6Redundancy(40*s, *seed) }},
		{"E7", func() experiments.Table { return experiments.E7Adaptive(40*s, *seed) }},
		{"E8", func() experiments.Table { return experiments.E8Batching(40*s, *seed) }},
		{"E9", func() experiments.Table { return experiments.E9Sort(12*s, *seed) }},
		{"E10", func() experiments.Table { return experiments.E10Async(16*s, *seed) }},
		{"E11", func() experiments.Table { return experiments.E11SpamDefense(40*s, *seed) }},
	}

	matched := false
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.id) {
			continue
		}
		matched = true
		fmt.Println(r.run().String())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "qurk-bench: unknown experiment %q (want E1..E11)\n", *only)
		os.Exit(2)
	}
}
