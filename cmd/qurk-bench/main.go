// Command qurk-bench regenerates every experiment table from
// EXPERIMENTS.md (the paper's evaluation artifacts) and prints them,
// plus the STORE scenario benchmarking the durable knowledge store's
// cold-start vs warm-start economics (emitting BENCH_store.json).
//
//	qurk-bench                  # all experiments, default scale
//	qurk-bench -only E3 -seed 7 # one experiment, custom seed
//	qurk-bench -scale 3         # 3× larger workloads
//	qurk-bench -only STORE      # cold vs warm run, writes BENCH_store.json
//	qurk-bench -only SORT       # ranking-strategy economics, writes BENCH_sort.json
//	qurk-bench -only MT         # multi-tenant sharing economics, writes BENCH_mt.json
//	qurk-bench -only BACKEND    # worker-backend routing economics, writes BENCH_backend.json
//	qurk-bench -only INFER      # adaptive-redundancy inference economics, writes BENCH_infer.json
//	qurk-bench -only OBS        # tracing on/off A/B overhead + volume, writes BENCH_obs.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/load"
)

// storeBench is the BENCH_store.json schema: one cold run against a
// fresh store, one warm run replaying it, on identical config.
type storeBench struct {
	Workload       string  `json:"workload"`
	Tuples         int     `json:"tuples"`
	Seed           int64   `json:"seed"`
	ColdHITs       int64   `json:"cold_hits"`
	WarmHITs       int64   `json:"warm_hits"`
	ColdSpentCents int64   `json:"cold_spent_cents"`
	WarmSpentCents int64   `json:"warm_spent_cents"`
	CacheServed    int64   `json:"warm_cache_served"`
	ReplayedAnswer int64   `json:"replayed_answers"`
	ReplayedObs    int64   `json:"replayed_observations"`
	ColdWallMs     float64 `json:"cold_wall_ms"`
	WarmWallMs     float64 `json:"warm_wall_ms"`
	ReplayMs       float64 `json:"replay_ms"`
	SameFinger     bool    `json:"fingerprints_match"`
}

// runStoreBench measures the store's cold→warm payoff and writes
// BENCH_store.json next to the other BENCH artifacts.
func runStoreBench(seed int64, scale int) error {
	dir, err := os.MkdirTemp("", "qurk-store-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := load.Config{Workload: load.WorkloadWarmstart,
		Tuples: 2000 * scale, Workers: 500, Seed: seed, StorePath: dir}
	cold, err := load.Run(cfg)
	if err != nil {
		return err
	}
	warm, err := load.Run(cfg)
	if err != nil {
		return err
	}
	out := storeBench{
		Workload:       string(cfg.Workload),
		Tuples:         cfg.Tuples,
		Seed:           seed,
		ColdHITs:       cold.HITs,
		WarmHITs:       warm.HITs,
		ColdSpentCents: int64(cold.Spent),
		WarmSpentCents: int64(warm.Spent),
		CacheServed:    warm.CacheServed,
		ReplayedAnswer: warm.ReplayedAnswers,
		ReplayedObs:    warm.ReplayedObservations,
		ColdWallMs:     float64(cold.Wall) / float64(time.Millisecond),
		WarmWallMs:     float64(warm.Wall) / float64(time.Millisecond),
		ReplayMs:       float64(warm.Replay) / float64(time.Millisecond),
		SameFinger:     cold.PassedKeysFNV == warm.PassedKeysFNV && cold.Passed == warm.Passed,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_store.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("STORE: cold %d HITs (%d¢, %.0f ms) → warm %d HITs (%d¢, %.0f ms; replay %.1f ms, %d answers + %d observations); fingerprints match: %v\n",
		out.ColdHITs, out.ColdSpentCents, out.ColdWallMs,
		out.WarmHITs, out.WarmSpentCents, out.WarmWallMs,
		out.ReplayMs, out.ReplayedAnswer, out.ReplayedObs, out.SameFinger)
	fmt.Println("wrote BENCH_store.json")
	return nil
}

// sortBench is the BENCH_sort.json schema: one seed-pinned sort
// workload run comparing the ranking strategies' HIT economics.
type sortBench struct {
	Workload         string  `json:"workload"`
	Tuples           int     `json:"tuples"`
	TopK             int     `json:"topk"`
	Seed             int64   `json:"seed"`
	RateHITs         int64   `json:"rate_hits"`
	CompareHITs      int64   `json:"compare_hits"`
	TopKHITs         int64   `json:"topk_hits"`
	HybridHITs       int64   `json:"hybrid_hits"`
	SpentCents       int64   `json:"spent_cents"`
	WallMs           float64 `json:"wall_ms"`
	HybridOrderMatch bool    `json:"hybrid_order_matches_compare"`
	TopKPrefixMatch  bool    `json:"topk_prefix_matches_compare"`
}

// runSortBench measures the ranking subsystem's strategy economics and
// writes BENCH_sort.json next to the other BENCH artifacts.
func runSortBench(seed int64, scale int) error {
	cfg := load.Config{Workload: load.WorkloadSort,
		Tuples: 120 * scale, Workers: 200, Seed: seed}
	rep, err := load.Run(cfg)
	if err != nil {
		return err
	}
	out := sortBench{
		Workload:         string(cfg.Workload),
		Tuples:           rep.Config.Tuples,
		TopK:             rep.Config.TopK,
		Seed:             seed,
		RateHITs:         rep.SortRateHITs,
		CompareHITs:      rep.SortCompareHITs,
		TopKHITs:         rep.SortTopKHITs,
		HybridHITs:       rep.SortHybridHITs,
		SpentCents:       int64(rep.Spent),
		WallMs:           float64(rep.Wall) / float64(time.Millisecond),
		HybridOrderMatch: rep.SortHybridFNV == rep.SortOrderFNV,
		TopKPrefixMatch:  rep.SortTopKFNV == rep.SortTopKBaseFNV,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_sort.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("SORT: %d items — rate %d HITs, compare %d, top-%d %d, hybrid %d (%d¢, %.0f ms); hybrid order matches compare: %v\n",
		out.Tuples, out.RateHITs, out.CompareHITs, out.TopK, out.TopKHITs, out.HybridHITs,
		out.SpentCents, out.WallMs, out.HybridOrderMatch)
	fmt.Println("wrote BENCH_sort.json")
	return nil
}

// mtBench is the BENCH_mt.json schema: the same concurrent-query fleet
// run with cross-query HIT sharing on and off, on identical config.
type mtBench struct {
	Workload           string  `json:"workload"`
	Queries            int     `json:"queries"`
	Tuples             int     `json:"tuples"`
	Seed               int64   `json:"seed"`
	MaxInflight        int     `json:"max_inflight"`
	SharedHITs         int64   `json:"shared_hits"`
	UnsharedHITs       int64   `json:"unshared_hits"`
	HITsSaved          int64   `json:"hits_saved"`
	SharedSpentCents   int64   `json:"shared_spent_cents"`
	UnsharedSpentCents int64   `json:"unshared_spent_cents"`
	SharedWallMs       float64 `json:"shared_wall_ms"`
	UnsharedWallMs     float64 `json:"unshared_wall_ms"`
	FairSpreadCents    int64   `json:"fairness_spread_cents"`
	SameFinger         bool    `json:"fingerprints_match"`
}

// runMTBench measures the multi-tenant serving payoff — HITs and cents
// saved by cross-query co-batching at identical per-query results —
// and writes BENCH_mt.json next to the other BENCH artifacts.
func runMTBench(seed int64, scale int) error {
	cfg := load.Config{Workload: load.WorkloadMultiTenant,
		Queries: 100 * scale, Tuples: 600 * scale, Workers: 300, Seed: seed}
	shared, err := load.Run(cfg)
	if err != nil {
		return err
	}
	base := cfg
	base.NoShare = true
	unshared, err := load.Run(base)
	if err != nil {
		return err
	}
	same := shared.PassedKeysFNV == unshared.PassedKeysFNV && shared.Passed == unshared.Passed
	out := mtBench{
		Workload:           string(cfg.Workload),
		Queries:            shared.Config.Queries,
		Tuples:             shared.Config.Tuples,
		Seed:               seed,
		MaxInflight:        shared.Config.MaxInflight,
		SharedHITs:         shared.HITs,
		UnsharedHITs:       unshared.HITs,
		HITsSaved:          unshared.HITs - shared.HITs,
		SharedSpentCents:   int64(shared.Spent),
		UnsharedSpentCents: int64(unshared.Spent),
		SharedWallMs:       float64(shared.Wall) / float64(time.Millisecond),
		UnsharedWallMs:     float64(unshared.Wall) / float64(time.Millisecond),
		FairSpreadCents:    int64(shared.FairSpreadCents),
		SameFinger:         same,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_mt.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("MT: %d queries — shared %d HITs (%d¢, %.0f ms) vs unshared %d HITs (%d¢, %.0f ms): %d HITs saved, fairness spread %d¢; fingerprints match: %v\n",
		out.Queries, out.SharedHITs, out.SharedSpentCents, out.SharedWallMs,
		out.UnsharedHITs, out.UnsharedSpentCents, out.UnsharedWallMs,
		out.HITsSaved, out.FairSpreadCents, out.SameFinger)
	fmt.Println("wrote BENCH_mt.json")
	return nil
}

// backendBench is the BENCH_backend.json schema: the same filter
// cascade run sim-only and through the worker-backend router, inside one
// seed-pinned deterministic workload run.
type backendBench struct {
	Workload         string  `json:"workload"`
	Tuples           int     `json:"tuples"`
	Seed             int64   `json:"seed"`
	SimOnlyHITs      int64   `json:"sim_only_hits"`
	SimOnlySpent     int64   `json:"sim_only_spent_cents"`
	RoutedHITs       int64   `json:"routed_hits"`
	RoutedSpent      int64   `json:"routed_spent_cents"`
	RoutedSimHITs    int64   `json:"routed_sim_hits"`
	RoutedLLMHITs    int64   `json:"routed_llm_hits"`
	RoutedSavedCents int64   `json:"routed_saved_cents"`
	WallMs           float64 `json:"wall_ms"`
	SameFinger       bool    `json:"fingerprints_match"`
}

// runBackendBench measures the worker-backend routing payoff — cents
// saved by serving part of the cascade from the LLM crowd at identical
// results — and writes BENCH_backend.json next to the other artifacts.
func runBackendBench(seed int64, scale int) error {
	cfg := load.Config{Workload: load.WorkloadHybridCrowd,
		Tuples: 2000 * scale, Workers: 500, Seed: seed}
	rep, err := load.Run(cfg)
	if err != nil {
		return err
	}
	out := backendBench{
		Workload:         string(cfg.Workload),
		Tuples:           rep.Config.Tuples,
		Seed:             seed,
		SimOnlyHITs:      rep.HybridSimHITs,
		SimOnlySpent:     int64(rep.HybridSimSpent),
		RoutedHITs:       rep.HITs,
		RoutedSpent:      int64(rep.Spent),
		RoutedSimHITs:    rep.BackendSimHITs,
		RoutedLLMHITs:    rep.BackendLLMHITs,
		RoutedSavedCents: int64(rep.RoutedSavedCents),
		WallMs:           float64(rep.Wall) / float64(time.Millisecond),
		SameFinger:       rep.PassedKeysFNV == rep.HybridSimFNV,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_backend.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("BACKEND: sim-only %d HITs (%d¢) vs routed %d HITs (%d¢, %d sim / %d llm): %d¢ saved by routing (%.0f ms); fingerprints match: %v\n",
		out.SimOnlyHITs, out.SimOnlySpent, out.RoutedHITs, out.RoutedSpent,
		out.RoutedSimHITs, out.RoutedLLMHITs, out.SimOnlySpent-out.RoutedSpent, out.WallMs, out.SameFinger)
	fmt.Println("wrote BENCH_backend.json")
	return nil
}

// inferBench is the BENCH_infer.json schema: the same filter cascade run
// under fixed-redundancy majority voting and under EM answer inference
// with adaptive redundancy, on identical config over a noisy crowd (so
// the adaptive loop both stops early on agreement and buys extensions on
// disagreement).
type inferBench struct {
	Workload            string  `json:"workload"`
	Tuples              int     `json:"tuples"`
	Seed                int64   `json:"seed"`
	Skill               float64 `json:"mean_skill"`
	MinAssignments      int     `json:"min_assignments"`
	Assignments         int     `json:"assignments_cap"`
	BaseHITs            int64   `json:"baseline_hits"`
	BaseAssignments     int64   `json:"baseline_assignments"`
	BaseSpentCents      int64   `json:"baseline_spent_cents"`
	AdaptiveHITs        int64   `json:"adaptive_hits"`
	AdaptiveAssignments int64   `json:"adaptive_assignments"`
	AdaptiveSpentCents  int64   `json:"adaptive_spent_cents"`
	Extensions          int64   `json:"extensions"`
	ExtendFailures      int64   `json:"extend_failures"`
	SavedCents          int64   `json:"saved_cents"`
	WallMs              float64 `json:"wall_ms"`
	SameFinger          bool    `json:"fingerprints_match"`
}

// runInferBench measures the answer-inference payoff — assignments and
// cents the adaptive redundancy loop avoided buying at identical results
// — and writes BENCH_infer.json next to the other artifacts. Unlike the
// load workload's perfect-crowd verify posture, the bench crowd is noisy
// (0.93 mean skill) so the adaptive column shows real extensions, not
// just floor posting.
func runInferBench(seed int64, scale int) error {
	cfg := load.Config{Workload: load.WorkloadInference,
		Tuples: 2000 * scale, Workers: 500, Seed: seed,
		Skill: 0.93, SkillStd: 0.02, Spam: 1e-12, Abandon: 1e-12, BatchPenalty: 1e-12}
	rep, err := load.Run(cfg)
	if err != nil {
		return err
	}
	out := inferBench{
		Workload:            string(cfg.Workload),
		Tuples:              rep.Config.Tuples,
		Seed:                seed,
		Skill:               rep.Config.Skill,
		MinAssignments:      rep.Config.MinAssignments,
		Assignments:         rep.Config.Assignments,
		BaseHITs:            rep.InferBaseHITs,
		BaseAssignments:     rep.InferBaseAssignments,
		BaseSpentCents:      int64(rep.InferBaseSpent),
		AdaptiveHITs:        rep.HITs,
		AdaptiveAssignments: rep.Assignments,
		AdaptiveSpentCents:  int64(rep.Spent),
		Extensions:          rep.InferExtensions,
		ExtendFailures:      rep.InferExtendFailures,
		SavedCents:          int64(rep.InferSavedCents),
		WallMs:              float64(rep.Wall) / float64(time.Millisecond),
		SameFinger:          rep.PassedKeysFNV == rep.InferBaseFNV,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_infer.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("INFER: baseline %d assignments over %d HITs (%d¢) vs adaptive %d over %d (%d¢, %d extensions): %d¢ saved (%.0f ms); fingerprints match: %v\n",
		out.BaseAssignments, out.BaseHITs, out.BaseSpentCents,
		out.AdaptiveAssignments, out.AdaptiveHITs, out.AdaptiveSpentCents,
		out.Extensions, out.BaseSpentCents-out.AdaptiveSpentCents, out.WallMs, out.SameFinger)
	fmt.Println("wrote BENCH_infer.json")
	return nil
}

func main() {
	seed := flag.Int64("seed", 1, "crowd and workload random seed")
	only := flag.String("only", "", "run a single experiment (E1..E11, STORE, SORT, MT, BACKEND, EXEC, INFER, OBS)")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	flag.Parse()
	if *scale < 1 {
		*scale = 1
	}
	s := *scale

	runners := []struct {
		id  string
		run func() experiments.Table
	}{
		{"E1", func() experiments.Table { return experiments.E1Pipeline(*seed) }},
		{"E2", func() experiments.Table { return experiments.E2Cache(8*s, *seed) }},
		{"E3", func() experiments.Table { return experiments.E3JoinInterfaces(8*s, 16*s, *seed) }},
		{"E4", func() experiments.Table { return experiments.E4TaskModel(4, 30*s, *seed) }},
		{"E5", func() experiments.Table { return experiments.E5PreFilter(6*s, 14*s, *seed) }},
		{"E6", func() experiments.Table { return experiments.E6Redundancy(40*s, *seed) }},
		{"E7", func() experiments.Table { return experiments.E7Adaptive(40*s, *seed) }},
		{"E8", func() experiments.Table { return experiments.E8Batching(40*s, *seed) }},
		{"E9", func() experiments.Table { return experiments.E9Sort(12*s, *seed) }},
		{"E10", func() experiments.Table { return experiments.E10Async(16*s, *seed) }},
		{"E11", func() experiments.Table { return experiments.E11SpamDefense(40*s, *seed) }},
	}

	matched := false
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.id) {
			continue
		}
		matched = true
		fmt.Println(r.run().String())
	}
	if *only == "" || strings.EqualFold(*only, "STORE") {
		matched = true
		if err := runStoreBench(*seed, s); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: STORE:", err)
			os.Exit(1)
		}
	}
	if *only == "" || strings.EqualFold(*only, "SORT") {
		matched = true
		if err := runSortBench(*seed, s); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: SORT:", err)
			os.Exit(1)
		}
	}
	if *only == "" || strings.EqualFold(*only, "MT") {
		matched = true
		if err := runMTBench(*seed, s); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: MT:", err)
			os.Exit(1)
		}
	}
	if *only == "" || strings.EqualFold(*only, "BACKEND") {
		matched = true
		if err := runBackendBench(*seed, s); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: BACKEND:", err)
			os.Exit(1)
		}
	}
	if *only == "" || strings.EqualFold(*only, "EXEC") {
		matched = true
		if err := runExecBench(); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: EXEC:", err)
			os.Exit(1)
		}
	}
	if *only == "" || strings.EqualFold(*only, "INFER") {
		matched = true
		if err := runInferBench(*seed, s); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: INFER:", err)
			os.Exit(1)
		}
	}
	if *only == "" || strings.EqualFold(*only, "OBS") {
		matched = true
		if err := runObsBench(*seed, s); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-bench: OBS:", err)
			os.Exit(1)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "qurk-bench: unknown experiment %q (want E1..E11, STORE, SORT, MT, BACKEND, EXEC, INFER, OBS)\n", *only)
		os.Exit(2)
	}
}
