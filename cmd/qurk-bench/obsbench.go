package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/load"
)

// obsBench is the BENCH_obs.json schema: the observability A/B. Each
// run executes one workload twice on identical config — tracing off,
// then tracing on (span trees written as JSONL) — and records the wall
// overhead, the trace volume, and whether the result fingerprints
// matched (they must: tracing is inert by construction).
type obsBench struct {
	Seed int64    `json:"seed"`
	Runs []obsRun `json:"runs"`
}

type obsRun struct {
	Workload string `json:"workload"`
	Tuples   int    `json:"tuples"`
	// UntracedWallMs / TracedWallMs are real elapsed times for the pump;
	// OverheadPct is the traced run's wall cost relative to untraced
	// (noisy at small scales — the span and byte counts are the stable
	// part of this artifact).
	UntracedWallMs float64 `json:"untraced_wall_ms"`
	TracedWallMs   float64 `json:"traced_wall_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	HITs           int64   `json:"hits"`
	SpentCents     int64   `json:"spent_cents"`
	// Spans is the number of span records in the JSONL trace; TraceBytes
	// its on-disk size.
	Spans      int64 `json:"spans"`
	TraceBytes int64 `json:"trace_bytes"`
	// SameFinger is true when HITs, spend, makespan, and the passing-key
	// fingerprint were identical across the untraced and traced runs —
	// the proof that arming the tracer changed nothing.
	SameFinger bool `json:"fingerprints_match"`
}

// runObsBench measures the cost of turning observability on — once over
// the bare task-manager path (filter cascade) and once through the full
// engine (streaming queries) — and writes BENCH_obs.json next to the
// other BENCH artifacts.
func runObsBench(seed int64, scale int) error {
	dir, err := os.MkdirTemp("", "qurk-obs-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	out := obsBench{Seed: seed}
	for _, w := range []struct {
		workload load.Workload
		tuples   int
	}{
		{load.WorkloadFilter, 2000 * scale},
		{load.WorkloadStreaming, 300 * scale},
	} {
		cfg := load.Config{Workload: w.workload, Tuples: w.tuples, Workers: 500, Seed: seed}
		off, err := load.Run(cfg)
		if err != nil {
			return fmt.Errorf("OBS %s untraced: %v", w.workload, err)
		}
		cfg.TracePath = filepath.Join(dir, string(w.workload)+".jsonl")
		on, err := load.Run(cfg)
		if err != nil {
			return fmt.Errorf("OBS %s traced: %v", w.workload, err)
		}
		spans, bytes, err := traceVolume(cfg.TracePath)
		if err != nil {
			return fmt.Errorf("OBS %s trace: %v", w.workload, err)
		}
		offMs := float64(off.Wall) / float64(time.Millisecond)
		onMs := float64(on.Wall) / float64(time.Millisecond)
		r := obsRun{
			Workload:       string(w.workload),
			Tuples:         w.tuples,
			UntracedWallMs: offMs,
			TracedWallMs:   onMs,
			HITs:           on.HITs,
			SpentCents:     int64(on.Spent),
			Spans:          spans,
			TraceBytes:     bytes,
			SameFinger: off.HITs == on.HITs && off.Spent == on.Spent &&
				off.Makespan == on.Makespan && off.Passed == on.Passed &&
				off.PassedKeysFNV == on.PassedKeysFNV,
		}
		if offMs > 0 {
			r.OverheadPct = (onMs - offMs) / offMs * 100
		}
		out.Runs = append(out.Runs, r)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range out.Runs {
		fmt.Printf("OBS %s: untraced %.0f ms vs traced %.0f ms (%+.1f%%), %d spans / %d bytes over %d HITs; fingerprints match: %v\n",
			r.Workload, r.UntracedWallMs, r.TracedWallMs, r.OverheadPct,
			r.Spans, r.TraceBytes, r.HITs, r.SameFinger)
	}
	fmt.Println("wrote BENCH_obs.json")
	return nil
}

// traceVolume counts the span records in a JSONL trace (every line
// after the schema header) and its size in bytes.
func traceVolume(path string) (spans, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lines := int64(0)
	for sc.Scan() {
		lines++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if lines > 0 {
		lines-- // the qurk-trace/v1 header line
	}
	return lines, st.Size(), nil
}
