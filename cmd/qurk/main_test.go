package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
)

func TestRunDemoQuery1(t *testing.T) {
	if err := runDemo("query1", 1, 0.95, false, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoQuery2(t *testing.T) {
	if err := runDemo("query2", 1, 0.95, false, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoUnknown(t *testing.T) {
	if err := runDemo("nope", 1, 0.95, false, "", false); err == nil {
		t.Fatal("unknown demo accepted")
	}
}

// TestRunDemoWarmStore: the same demo twice over one -store directory;
// the second run must replay the first run's answers.
func TestRunDemoWarmStore(t *testing.T) {
	dir := t.TempDir()
	if err := runDemo("query2", 1, 0.95, false, dir, false); err != nil {
		t.Fatal(err)
	}
	if err := runDemo("query2", 1, 0.95, false, dir, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunScriptOverCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "photos.csv")
	if err := os.WriteFile(csvPath, []byte("img:Image\na.png\nb.png\nc.png\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	scriptPath := filepath.Join(dir, "q.qurk")
	script := `
TASK keep(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Keep this photo? %s", photo
  Response: YesNo

SELECT img FROM photos WHERE keep(img)
`
	if err := os.WriteFile(scriptPath, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(scriptPath, "", tableFlags{"photos=" + csvPath}, 0.5, 1, 0, 0.95, false, false, "", false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", nil, 0.5, 1, 0, 0.95, false, false, "", false); err == nil {
		t.Fatal("missing script accepted")
	}
	if err := run("/nonexistent.qurk", "", nil, 0.5, 1, 0, 0.95, false, false, "", false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	scriptPath := filepath.Join(dir, "q.qurk")
	_ = os.WriteFile(scriptPath, []byte("SELECT x FROM t"), 0o644)
	if err := run(scriptPath, "", tableFlags{"bad"}, 0.5, 1, 0, 0.95, false, false, "", false); err == nil {
		t.Fatal("bad -table accepted")
	}
	if err := run(scriptPath, "", tableFlags{"t=/nonexistent.csv"}, 0.5, 1, 0, 0.95, false, false, "", false); err == nil {
		t.Fatal("missing csv accepted")
	}
}

func TestHashOracleDeterministicSelectivity(t *testing.T) {
	o := &hashOracle{selectivity: 0.3}
	args := []relation.Value{relation.NewImage("x.png")}
	a := o.Truth("keep", args)
	b := o.Truth("keep", args)
	if !a.Equal(b) {
		t.Fatal("hash oracle not deterministic")
	}
	yes := 0
	for i := 0; i < 1000; i++ {
		v := o.Truth("keep", []relation.Value{relation.NewInt(int64(i))})
		if v.Truthy() {
			yes++
		}
	}
	if yes < 250 || yes > 350 {
		t.Fatalf("selectivity = %d/1000, want ≈300", yes)
	}
}

func TestExplainScript(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "photos.csv")
	_ = os.WriteFile(csvPath, []byte("img:Image\na.png\n"), 0o644)
	scriptPath := filepath.Join(dir, "q.qurk")
	script := `
TASK keep(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Keep? %s", photo
  Response: YesNo

SELECT img FROM photos WHERE keep(img) LIMIT 2
`
	_ = os.WriteFile(scriptPath, []byte(script), 0o644)
	if err := explainScript(scriptPath, tableFlags{"photos=" + csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := explainScript("", nil); err == nil {
		t.Fatal("explain without script accepted")
	}
	if err := explainScript("/nonexistent", nil); err == nil {
		t.Fatal("explain missing file accepted")
	}
	if err := explainScript(scriptPath, tableFlags{"bad"}); err == nil {
		t.Fatal("bad table accepted")
	}
}
