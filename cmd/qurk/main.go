// Command qurk runs a .qurk script (TASK definitions + SELECT queries)
// against CSV tables with a simulated crowd, printing results and the
// final Query Status Dashboard.
//
//	qurk -demo query1          # the paper's Query 1 on synthetic data
//	qurk -demo query2          # the paper's Query 2 (celebrity join)
//	qurk -script q.qurk -table companies=companies.csv -selectivity 0.4
//	qurk -demo query2 -store ./qurk-store   # run twice: 2nd run is free
//	qurk -repl -table photos=photos.csv     # interactive session
//
// In the REPL, statements end with ';' (or a blank line): TASK blocks
// define tasks, SELECT statements run as streaming queries whose rows
// print as the crowd produces them. Ctrl-C cancels the in-flight query
// (its open HITs are expired and unspent budget released) instead of
// killing the process; a second Ctrl-C exits.
//
// Without ground truth, the crowd answers from a deterministic synthetic
// oracle: boolean tasks pass with the configured selectivity (hashed per
// argument, so redundancy and caching behave realistically), and Rating
// and Rank tasks answer with a stable per-item latent score on their
// scale — shared between a rating task and its Compare: companion, so
// ORDER BY queries exercise the full human-powered sort (rate / compare
// / hybrid) from the CLI. Free-text tasks get a degenerate constant
// truth under -script; use the -demo workloads (or the library API with
// a real Oracle) for richer ground truth.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"sync"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/qurk"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tables tableFlags
	script := flag.String("script", "", "path to a .qurk script")
	demo := flag.String("demo", "", "run a built-in demo: query1 or query2")
	selectivity := flag.Float64("selectivity", 0.5, "pass rate of the synthetic oracle for boolean tasks")
	seed := flag.Int64("seed", 1, "crowd random seed")
	budgetDollars := flag.Float64("budget", 0, "budget limit in dollars (0 = unlimited)")
	skill := flag.Float64("skill", 0.9, "mean worker accuracy")
	showDash := flag.Bool("dashboard", true, "print the dashboard after the run")
	adaptiveJoins := flag.Bool("adaptive-joins", false,
		"cost-based join pre-filtering (tasks opt in with a PreFilter clause)")
	storePath := flag.String("store", "",
		"durable knowledge store directory: replayed at start (warm cache, informed estimators), streamed to during the run")
	explain := flag.Bool("explain", false, "print query plans instead of executing")
	analyze := flag.Bool("analyze", false,
		"run with tracing on and print each query's EXPLAIN ANALYZE table after its rows")
	repl := flag.Bool("repl", false, "interactive session: streaming queries, Ctrl-C cancels the in-flight query")
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Parse()

	if *explain {
		if err := explainScript(*script, tables); err != nil {
			fmt.Fprintln(os.Stderr, "qurk:", err)
			os.Exit(1)
		}
		return
	}
	if *repl {
		if err := runREPL(tables, *selectivity, *seed, *budgetDollars, *skill, *adaptiveJoins, *storePath); err != nil {
			fmt.Fprintln(os.Stderr, "qurk:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*script, *demo, tables, *selectivity, *seed, *budgetDollars, *skill, *showDash, *adaptiveJoins, *storePath, *analyze); err != nil {
		fmt.Fprintln(os.Stderr, "qurk:", err)
		os.Exit(1)
	}
}

func run(script, demo string, tables tableFlags, selectivity float64, seed int64,
	budgetDollars, skill float64, showDash, adaptiveJoins bool, storePath string, analyze bool) error {
	if demo != "" {
		return runDemo(demo, seed, skill, showDash, storePath, analyze)
	}
	if script == "" {
		return fmt.Errorf("need -script or -demo (try -demo query1)")
	}
	src, err := os.ReadFile(script)
	if err != nil {
		return err
	}
	oracle := &hashOracle{selectivity: selectivity}
	eng, err := qurk.New(qurk.Config{
		Oracle:        oracle,
		Crowd:         crowd.Config{Seed: seed, MeanSkill: skill},
		BudgetCents:   budget.Cents(budgetDollars * 100),
		AutoTune:      true,
		AdaptiveJoins: adaptiveJoins,
		StorePath:     storePath,
		Trace:         analyze,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	oracle.bindTasks(eng.Tasks)
	if err := registerTables(eng, tables); err != nil {
		return err
	}
	handles, err := eng.RunScript(string(src))
	if err != nil {
		return err
	}
	for i, h := range handles {
		cursor := h.Rows()
		var rows []qurk.Tuple
		for cursor.Next() {
			rows = append(rows, cursor.Tuple())
		}
		fmt.Printf("-- query %d: %s\n", i+1, h.SQL)
		printRows(rows)
		if err := cursor.Err(); err != nil {
			fmt.Printf("   (query error: %v)\n", err)
		}
		if analyze {
			fmt.Print(h.Explain())
		}
	}
	if showDash {
		fmt.Println()
		fmt.Println(dashboard.Render(eng.Snapshot()))
	}
	return nil
}

func runDemo(which string, seed int64, skill float64, showDash bool, storePath string, analyze bool) error {
	var (
		ds    qurk.Dataset
		tasks string
		query string
	)
	switch strings.ToLower(which) {
	case "query1":
		ds = qurk.Companies(10, seed)
		tasks = `
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))
`
		query = `SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies`
	case "query2":
		ds = qurk.Celebrities(8, 16, 0.4, seed)
		tasks = `
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Drag a picture of any Celebrity in the left column to their matching picture in the Spotted Star column to the right."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
`
		query = `SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`
	default:
		return fmt.Errorf("unknown demo %q (want query1 or query2)", which)
	}
	eng, err := qurk.New(qurk.Config{
		Oracle:    ds.Oracle,
		Crowd:     crowd.Config{Seed: seed, MeanSkill: skill},
		StorePath: storePath,
		Trace:     analyze,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	for _, t := range ds.Tables {
		if err := eng.Register(t); err != nil {
			return err
		}
	}
	if err := eng.Define(tasks); err != nil {
		return err
	}
	cursor, err := eng.Query(context.Background(), query)
	if err != nil {
		return err
	}
	defer cursor.Close()
	var rows []qurk.Tuple
	for cursor.Next() {
		rows = append(rows, cursor.Tuple())
	}
	if err := cursor.Err(); err != nil {
		return err
	}
	fmt.Printf("-- %s\n", query)
	printRows(rows)
	if analyze {
		fmt.Print(cursor.Explain())
	}
	if showDash {
		fmt.Println()
		fmt.Println(dashboard.Render(eng.Snapshot()))
	}
	return nil
}

func printRows(rows []qurk.Tuple) {
	if len(rows) == 0 {
		fmt.Println("   (no rows)")
		return
	}
	cols := rows[0].Schema.Columns()
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name
	}
	fmt.Println("   " + strings.Join(header, " | "))
	for _, row := range rows {
		cells := make([]string, len(row.Values))
		for i, v := range row.Values {
			cells[i] = v.String()
		}
		fmt.Println("   " + strings.Join(cells, " | "))
	}
	fmt.Printf("   (%d rows)\n", len(rows))
}

// explainScript plans every query in the script and prints the operator
// trees without posting any HITs.
func explainScript(script string, tables tableFlags) error {
	if script == "" {
		return fmt.Errorf("-explain needs -script")
	}
	src, err := os.ReadFile(script)
	if err != nil {
		return err
	}
	parsed, err := qlang.Parse(string(src))
	if err != nil {
		return err
	}
	catalog := relation.NewCatalog()
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q (want name=path.csv)", spec)
		}
		tab, err := relation.LoadCSVFile(name, path)
		if err != nil {
			return err
		}
		if err := catalog.Register(tab); err != nil {
			return err
		}
	}
	for i, stmt := range parsed.Queries {
		node, err := plan.Build(stmt, parsed, catalog)
		if err != nil {
			return fmt.Errorf("query %d: %v", i+1, err)
		}
		fmt.Printf("-- query %d: %s\n%s\n", i+1, stmt.String(), plan.Explain(node))
	}
	return nil
}

// hashOracle is the synthetic ground truth for user-supplied tasks: it
// answers deterministically from a hash of (task, args), so repeated and
// redundant questions agree, selectivity is controllable, and caching
// behaves as it would with stable real-world truth.
//
// With tasks bound (bindTasks, done right after the engine exists),
// Rating and Rank tasks answer with a stable latent score on their
// scale, hashed from the arguments alone — so a rating task and its
// Compare: companion agree on every item's latent quality and the
// human-powered sort strategies (rate / compare / hybrid) produce
// consistent orders from the CLI too.
type hashOracle struct {
	selectivity float64

	mu    sync.Mutex
	tasks func() []*qlang.TaskDef
}

// bindTasks late-binds the task catalog (the engine is constructed
// after the oracle). Call before any query runs.
func (o *hashOracle) bindTasks(tasks func() []*qlang.TaskDef) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tasks = tasks
}

func (o *hashOracle) taskDef(name string) *qlang.TaskDef {
	o.mu.Lock()
	tasks := o.tasks
	o.mu.Unlock()
	if tasks == nil {
		return nil
	}
	for _, def := range tasks() {
		if strings.EqualFold(def.Name, name) {
			return def
		}
	}
	return nil
}

func hash01(salt string, args []relation.Value) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(salt))
	for _, a := range args {
		_, _ = h.Write(a.Encode(nil))
	}
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// Truth implements crowd.Oracle.
func (o *hashOracle) Truth(task string, args []relation.Value) relation.Value {
	if def := o.taskDef(task); def != nil &&
		(def.Type == qlang.TaskRating || def.Type == qlang.TaskRank) {
		lo, hi := def.Response.ScaleMin, def.Response.ScaleMax
		if hi <= lo {
			lo, hi = 1, 9
		}
		// Salted by "score" and NOT by task name: every ranking task
		// sees the same latent quality for the same item.
		x := hash01("score", args)
		return relation.NewFloat(float64(lo) + x*float64(hi-lo))
	}
	x := hash01(strings.ToLower(task), args)
	return relation.NewBool(x < o.selectivity)
}

var _ crowd.Oracle = (*hashOracle)(nil)
