package main

// The interactive session. Statements terminate with ';' or a blank
// line; TASK blocks register tasks, SELECT statements run as streaming
// queries printing rows as the simulated crowd produces them. SIGINT
// (Ctrl-C) cancels the in-flight query through its context — open HITs
// are expired at the marketplace and unspent budget released — and a
// second SIGINT exits the process.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/relation"
	"repro/qurk"
)

// replSession owns the engine and the SIGINT → cancel routing.
type replSession struct {
	eng *qurk.Engine

	mu       sync.Mutex
	cancel   context.CancelFunc // in-flight query's context cancel
	canceled bool               // first Ctrl-C already spent on it
}

// interrupt implements the two-stage Ctrl-C contract.
func (s *replSession) interrupt() (exit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil && !s.canceled {
		s.canceled = true
		s.cancel()
		fmt.Println("\n^C — canceling query (Ctrl-C again to exit)")
		return false
	}
	return true
}

func (s *replSession) setCancel(c context.CancelFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cancel, s.canceled = c, false
}

func runREPL(tables tableFlags, selectivity float64, seed int64,
	budgetDollars, skill float64, adaptiveJoins bool, storePath string) error {
	oracle := &hashOracle{selectivity: selectivity}
	eng, err := qurk.New(qurk.Config{
		Oracle:        oracle,
		Crowd:         crowd.Config{Seed: seed, MeanSkill: skill},
		BudgetCents:   budget.Cents(budgetDollars * 100),
		AutoTune:      true,
		AdaptiveJoins: adaptiveJoins,
		StorePath:     storePath,
		// Interactive sessions always trace, so EXPLAIN ANALYZE works
		// without a restart; the overhead is irrelevant at human speed.
		Trace: true,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	oracle.bindTasks(eng.Tasks)
	if err := registerTables(eng, tables); err != nil {
		return err
	}

	s := &replSession{eng: eng}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	go func() {
		for range sigc {
			if s.interrupt() {
				fmt.Println("\nbye")
				// Close drains the knowledge store's buffered records
				// (when -store is set) and cancels in-flight queries, so
				// a Ctrl-C exit loses nothing a \q exit would keep.
				eng.Close()
				os.Exit(130)
			}
		}
	}()

	fmt.Println("qurk interactive — end statements with ';' (or a blank line).")
	fmt.Println("TASK blocks define tasks; SELECT streams rows as the crowd answers.")
	fmt.Println("EXPLAIN ANALYZE SELECT ... runs the query and prints the per-operator trace table.")
	fmt.Println(`Commands: \dash (dashboard), \tables, \q (quit). Ctrl-C cancels the running query.`)
	in := bufio.NewScanner(os.Stdin)
	var buf []string
	prompt := func() {
		if len(buf) == 0 {
			fmt.Print("qurk> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case len(buf) == 0 && trimmed == "":
			// idle blank line
		case len(buf) == 0 && strings.HasPrefix(trimmed, `\`):
			s.command(trimmed)
		default:
			done := trimmed == "" || strings.HasSuffix(trimmed, ";")
			if trimmed != "" {
				// Strip the terminator from the whitespace-trimmed tail so
				// "SELECT ...; " (trailing blanks) parses cleanly, keeping
				// the line's leading indentation for TASK bodies.
				kept := strings.TrimRight(line, " \t\r")
				buf = append(buf, strings.TrimSuffix(kept, ";"))
			}
			if done && len(buf) > 0 {
				s.execute(strings.Join(buf, "\n"))
				buf = buf[:0]
			}
		}
		prompt()
	}
	fmt.Println()
	return in.Err()
}

func (s *replSession) command(cmd string) {
	switch strings.ToLower(strings.Fields(cmd)[0]) {
	case `\q`, `\quit`, `\exit`:
		fmt.Println("bye")
		s.eng.Close()
		os.Exit(0)
	case `\dash`, `\dashboard`:
		fmt.Println(dashboard.Render(s.eng.Snapshot()))
	case `\tables`:
		for _, name := range s.eng.Catalog().Names() {
			if t, ok := s.eng.Catalog().Table(name); ok {
				fmt.Printf("  %s (%d rows)\n", name, t.Len())
			}
		}
	default:
		fmt.Printf("unknown command %s (try \\dash, \\tables, \\q)\n", cmd)
	}
}

// execute routes one statement: TASK definitions to Define, EXPLAIN
// ANALYZE queries through the tracing path, everything else through the
// streaming query path.
func (s *replSession) execute(stmt string) {
	trimmed := strings.TrimSpace(stmt)
	upper := strings.ToUpper(trimmed)
	if strings.HasPrefix(upper, "TASK") {
		if err := s.eng.Define(stmt); err != nil {
			fmt.Println("define error:", err)
			return
		}
		fmt.Println("task defined")
		return
	}
	analyze := false
	if strings.HasPrefix(upper, "EXPLAIN ANALYZE") {
		analyze = true
		stmt = strings.TrimSpace(trimmed[len("EXPLAIN ANALYZE"):])
		if stmt == "" {
			fmt.Println("usage: EXPLAIN ANALYZE SELECT ...")
			return
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.setCancel(cancel)
	defer func() {
		s.setCancel(nil)
		cancel()
	}()

	rows, err := s.eng.Query(ctx, stmt)
	if err != nil {
		var pe *qurk.ParseError
		if errors.As(err, &pe) {
			fmt.Printf("parse error at line %d col %d: %s\n", pe.Line, pe.Col, pe.Msg)
			return
		}
		fmt.Println("query error:", err)
		return
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		t := rows.Tuple()
		if !analyze {
			if n == 0 {
				printHeader(t)
			}
			printTuple(t)
		}
		n++
	}
	if analyze {
		// The query ran to completion (or died); the trace table carries
		// the per-operator story instead of the rows.
		fmt.Print(rows.Explain())
	}
	switch err := rows.Err(); {
	case err == nil:
		fmt.Printf("(%d rows, spent %v)\n", n, rows.Handle().SunkCents())
	case errors.Is(err, qurk.ErrCanceled):
		fmt.Printf("(canceled after %d rows, sunk %v)\n", n, rows.Handle().SunkCents())
	case errors.Is(err, qurk.ErrBudgetExhausted):
		fmt.Printf("(budget exhausted after %d rows: %v)\n", n, err)
	case errors.Is(err, qurk.ErrDeadline):
		fmt.Printf("(deadline exceeded after %d rows)\n", n)
	default:
		fmt.Printf("(%d rows; query error: %v)\n", n, err)
	}
}

func printHeader(t qurk.Tuple) {
	cols := t.Schema.Columns()
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	fmt.Println("   " + strings.Join(names, " | "))
}

func printTuple(t qurk.Tuple) {
	cells := make([]string, len(t.Values))
	for i, v := range t.Values {
		cells[i] = v.String()
	}
	fmt.Println("   " + strings.Join(cells, " | "))
}

func registerTables(eng *qurk.Engine, tables tableFlags) error {
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q (want name=path.csv)", spec)
		}
		tab, err := relation.LoadCSVFile(name, path)
		if err != nil {
			return err
		}
		if err := eng.Register(tab); err != nil {
			return err
		}
	}
	return nil
}
