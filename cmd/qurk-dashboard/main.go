// Command qurk-dashboard recreates the SIGMOD demo: it starts long-
// running versions of the paper's two queries against a small, slow
// simulated crowd, paces the virtual clock to real time, and serves
//
//	http://localhost:8080/        the Query Status Dashboard (Figure 2)
//	http://localhost:8080/tasks   the Task Completion Interface
//
// so a live audience can answer HITs (including the two-column join of
// Figure 3) and watch the queries advance. The engine runs with tracing
// on, so the observability surfaces are live too:
//
//	http://localhost:8080/metrics      Prometheus text metrics
//	http://localhost:8080/trace/{id}   one query's span tree as JSON
//	http://localhost:8080/debug/pprof  Go runtime profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/qurk"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	seed := flag.Int64("seed", 1, "workload and crowd seed")
	pace := flag.Float64("pace", 0.05, "real seconds per virtual second (0 = full speed)")
	workers := flag.Int("workers", 3, "simulated workers competing with the audience")
	flag.Parse()

	if err := run(*addr, *seed, *pace, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "qurk-dashboard:", err)
		os.Exit(1)
	}
}

func run(addr string, seed int64, pace float64, workers int) error {
	companies := qurk.Companies(12, seed)
	celebs := qurk.Celebrities(6, 12, 0.4, seed+1)
	eng, err := qurk.New(qurk.Config{
		Oracle: qurk.CombineOracles(companies.Oracle, celebs.Oracle),
		Crowd: crowd.Config{
			Seed:    seed,
			Workers: workers, // a small pool keeps HITs open for the audience
		},
		// The demo serves /metrics and /trace/{id}; at audience speed the
		// tracing overhead is invisible.
		Trace: true,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	for _, ds := range []qurk.Dataset{companies, celebs} {
		for _, t := range ds.Tables {
			if err := eng.Register(t); err != nil {
				return err
			}
		}
	}
	if err := eng.Define(`
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Drag a picture of any Celebrity in the left column to their matching picture in the Spotted Star column to the right."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
`); err != nil {
		return err
	}

	// Pace the clock so the audience can race the simulated turkers.
	eng.Clock().SetPace(pace)

	// Start the demo's two long-running queries through the streaming
	// API; the drained cursors keep the dashboard's progress live while
	// Close (on shutdown) cancels whatever is still in flight.
	ctx := context.Background()
	for _, sql := range []string{
		`SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies`,
		`SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`,
	} {
		rows, err := eng.Query(ctx, sql)
		if err != nil {
			return err
		}
		go func() {
			defer rows.Close()
			for rows.Next() {
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", dashboard.NewHandler(eng))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Printf("Qurk demo dashboard on http://localhost%s/ (tasks at /tasks, metrics at /metrics, profiles at /debug/pprof)\n", addr)
	return http.ListenAndServe(addr, mux)
}
