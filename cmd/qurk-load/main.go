// Command qurk-load drives the deterministic crowd-scale load harness
// (internal/load) against the sharded marketplace and prints throughput,
// virtual-time latency percentiles and cost.
//
//	qurk-load                                  # 1000-tuple filter cascade
//	qurk-load -workload join -tuples 20000     # 5×5 join grids at scale
//	qurk-load -workload joinprefilter          # cost-based pre-filtered join
//	qurk-load -workload orderby -workers 2000  # rating sort, big crowd
//	qurk-load -verify                          # run twice, assert identical
//	qurk-load -workload warmstart -store DIR -verify
//	    # cold run, then a warm run over the same store: asserts run 2
//	    # pays fewer HITs, answers ≥ half its questions from replayed
//	    # state, and reproduces run 1's result fingerprint exactly
//	qurk-load -workload streaming -tuples 200 -cancelafter 20 -verify
//	    # context-first query API end to end: asserts the Rows cursor
//	    # delivered its first tuple before the final HIT completed, that
//	    # posting stopped dead at ctx cancellation (0 HITs in practice;
//	    # at most 2 already-in-flight posts tolerated, expired + refunded),
//	    # and that the completed prefix's fingerprint is rerun-identical
//	qurk-load -workload hybridcrowd -verify
//	    # worker-backend routing end to end: the same filter cascade runs
//	    # sim-only and then through a backend router that serves the first
//	    # stage from a deterministic LLM crowd at half the human reward:
//	    # asserts both phases produce identical result fingerprints, that
//	    # both backends actually served HITs, that the routed run spent
//	    # strictly less, and that reruns are byte-identical
//	qurk-load -workload multitenant -queries 150 -verify
//	    # hundreds of concurrent streaming queries through ONE engine with
//	    # cross-query HIT sharing and a posting admission gate: asserts
//	    # per-query result fingerprints are rerun-identical, that a
//	    # sharing-off baseline reproduces the same fingerprints with
//	    # strictly MORE HITs, and that per-query sunk costs sum exactly
//	    # to the account's spend (audited inside every run)
//	qurk-load -workload inference -verify
//	    # joint worker-quality/answer inference end to end: the same
//	    # filter cascade runs under fixed-redundancy majority voting and
//	    # then under EM with adaptive redundancy (post at the floor,
//	    # extend while the posterior is unsure): asserts the adaptive
//	    # phase buys strictly fewer assignments at an identical result
//	    # fingerprint, and that reruns are byte-identical
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/load"
)

func main() {
	workload := flag.String("workload", "filter", "scenario: filter | join | joinprefilter | orderby | warmstart | streaming | multitenant | hybridcrowd | inference")
	tuples := flag.Int("tuples", 1000, "input cardinality")
	workers := flag.Int("workers", 500, "simulated crowd size")
	shards := flag.Int("shards", 0, "worker-pool claim shards (0 = one per 64 workers)")
	batch := flag.Int("batch", 5, "tuples per HIT")
	assignments := flag.Int("assignments", 0, "redundancy per HIT (0 = workload default: 3, sort: 5)")
	price := flag.Int64("price", 1, "reward cents per HIT")
	seed := flag.Int64("seed", 1, "crowd and workload random seed")
	skill := flag.Float64("skill", 0, "mean worker skill (0 = crowd default 0.85)")
	skillStd := flag.Float64("skillstd", 0, "worker skill spread (0 = crowd default 0.08)")
	spam := flag.Float64("spam", 0, "spammer fraction (0 = crowd default 0.05)")
	abandon := flag.Float64("abandon", 0, "abandonment rate (0 = crowd default 0.02)")
	batchPenalty := flag.Float64("batchpenalty", 0, "per-question accuracy decay (0 = crowd default 0.015)")
	storePath := flag.String("store", "", "durable knowledge store directory (required by -workload warmstart)")
	topk := flag.Int("topk", 0, "sort: LIMIT pushed into the top-k comparison phase (0 = default 3; clamped below the group size of 5)")
	cancelAfter := flag.Int("cancelafter", 0, "streaming: cancel the query context after N delivered rows (0 = run to completion)")
	streamWindow := flag.Int("streamwindow", 0, "streaming: concurrent in-flight filter cascades (0 = default 8)")
	queries := flag.Int("queries", 0, "multitenant: concurrent streaming queries (0 = default 150)")
	noShare := flag.Bool("noshare", false, "multitenant: turn cross-query HIT sharing off (baseline)")
	maxInflight := flag.Int("maxinflight", 0, "multitenant: admission gate on concurrently posted HITs (0 = default 32)")
	noPlanCache := flag.Bool("noplancache", false, "disable the normalized-SQL plan cache (A/B baseline; -verify fingerprints must match either way)")
	minAssignments := flag.Int("minassignments", 0, "inference: adaptive posting floor (0 = default 2); the EM phase extends toward -assignments while unsure")
	verify := flag.Bool("verify", false, "run twice and fail unless virtual-time metrics match (warmstart: assert run 2 is cheaper at an identical fingerprint)")
	trace := flag.String("trace", "", "write the run's span trees (batches, HITs, assignments) to this path as JSONL; with -verify the rerun drops tracing, so matching fingerprints prove tracing is inert")
	flag.Parse()

	cfg := load.Config{
		Workload:       load.Workload(*workload),
		Tuples:         *tuples,
		Workers:        *workers,
		Shards:         *shards,
		Batch:          *batch,
		Assignments:    *assignments,
		PriceCents:     *price,
		Seed:           *seed,
		Skill:          *skill,
		SkillStd:       *skillStd,
		Spam:           *spam,
		Abandon:        *abandon,
		BatchPenalty:   *batchPenalty,
		StorePath:      *storePath,
		TopK:           *topk,
		CancelAfter:    *cancelAfter,
		StreamWindow:   *streamWindow,
		Queries:        *queries,
		NoShare:        *noShare,
		MaxInflight:    *maxInflight,
		NoPlanCache:    *noPlanCache,
		MinAssignments: *minAssignments,
		TracePath:      *trace,
	}
	rep, err := load.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qurk-load:", err)
		os.Exit(1)
	}
	fmt.Print(rep)

	if cfg.Workload == load.WorkloadStreaming {
		if err := checkStreaming(rep); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-load:", err)
			os.Exit(1)
		}
	}
	if cfg.Workload == load.WorkloadSort {
		if err := checkSort(rep); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-load:", err)
			os.Exit(1)
		}
	}
	if cfg.Workload == load.WorkloadHybridCrowd {
		if err := checkHybrid(rep); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-load:", err)
			os.Exit(1)
		}
	}
	if cfg.Workload == load.WorkloadInference {
		if err := checkInference(rep); err != nil {
			fmt.Fprintln(os.Stderr, "qurk-load:", err)
			os.Exit(1)
		}
	}

	if *verify {
		// The rerun never traces: when -trace was set, the fingerprint
		// comparisons below double as a tracing on/off A/B.
		cfg.TracePath = ""
		again, err := load.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qurk-load: rerun:", err)
			os.Exit(1)
		}
		if cfg.Workload == load.WorkloadWarmstart {
			// With a store, the second run is supposed to differ: it must
			// be cheaper, warm-started, and byte-identical in results.
			// When the store was already warm before the first run (the
			// flag used twice against one directory), both runs are warm
			// and "strictly fewer" relaxes to "no more expensive".
			alreadyWarm := rep.ReplayedAnswers > 0
			switch {
			case !alreadyWarm && again.HITs >= rep.HITs:
				fmt.Fprintf(os.Stderr, "qurk-load: warm run paid %d HITs, cold paid %d\n", again.HITs, rep.HITs)
				os.Exit(1)
			case alreadyWarm && again.HITs > rep.HITs:
				fmt.Fprintf(os.Stderr, "qurk-load: rerun over a warm store paid %d HITs, first run paid %d\n", again.HITs, rep.HITs)
				os.Exit(1)
			case 2*again.CacheServed < again.Outcomes:
				fmt.Fprintf(os.Stderr, "qurk-load: warm run answered only %d of %d questions from the store\n",
					again.CacheServed, again.Outcomes)
				os.Exit(1)
			case again.PassedKeysFNV != rep.PassedKeysFNV || again.Passed != rep.Passed:
				fmt.Fprintf(os.Stderr, "qurk-load: WARM RESULT DRIFT\ncold:\n%s\nwarm:\n%s", rep, again)
				os.Exit(1)
			}
			fmt.Print(again)
			if alreadyWarm {
				fmt.Println("verify: store already warm — both runs served from it at an identical result fingerprint")
			} else {
				fmt.Printf("verify: warm run paid %d fewer HITs at an identical result fingerprint\n", rep.HITs-again.HITs)
			}
			return
		}
		if cfg.Workload == load.WorkloadSort {
			if err := checkSort(again); err != nil {
				fmt.Fprintln(os.Stderr, "qurk-load: rerun:", err)
				os.Exit(1)
			}
			if rep.HITs != again.HITs || rep.Spent != again.Spent || rep.Makespan != again.Makespan ||
				rep.SortRateHITs != again.SortRateHITs || rep.SortCompareHITs != again.SortCompareHITs ||
				rep.SortTopKHITs != again.SortTopKHITs || rep.SortHybridHITs != again.SortHybridHITs ||
				rep.SortOrderFNV != again.SortOrderFNV || rep.SortHybridFNV != again.SortHybridFNV ||
				rep.SortTopKFNV != again.SortTopKFNV {
				fmt.Fprintf(os.Stderr, "qurk-load: NONDETERMINISTIC\nfirst:\n%s\nsecond:\n%s", rep, again)
				os.Exit(1)
			}
			fmt.Print(again)
			fmt.Printf("verify: rerun-identical; top-%d paid %d of compare's %d HITs; hybrid paid %d at an identical final order\n",
				rep.Config.TopK, rep.SortTopKHITs, rep.SortCompareHITs, rep.SortHybridHITs)
			return
		}
		if cfg.Workload == load.WorkloadHybridCrowd {
			if err := checkHybrid(again); err != nil {
				fmt.Fprintln(os.Stderr, "qurk-load: rerun:", err)
				os.Exit(1)
			}
			if rep.HITs != again.HITs || rep.Spent != again.Spent || rep.Makespan != again.Makespan ||
				rep.PassedKeysFNV != again.PassedKeysFNV ||
				rep.HybridSimHITs != again.HybridSimHITs || rep.HybridSimSpent != again.HybridSimSpent ||
				rep.HybridSimFNV != again.HybridSimFNV ||
				rep.BackendSimHITs != again.BackendSimHITs || rep.BackendLLMHITs != again.BackendLLMHITs ||
				rep.RoutedSavedCents != again.RoutedSavedCents {
				fmt.Fprintf(os.Stderr, "qurk-load: NONDETERMINISTIC\nfirst:\n%s\nsecond:\n%s", rep, again)
				os.Exit(1)
			}
			fmt.Print(again)
			fmt.Printf("verify: rerun-identical; routing served %d of %d HITs from the llm crowd and spent %v less than sim-only at an identical result fingerprint\n",
				rep.BackendLLMHITs, rep.HITs, rep.HybridSimSpent-rep.Spent)
			return
		}
		if cfg.Workload == load.WorkloadInference {
			if err := checkInference(again); err != nil {
				fmt.Fprintln(os.Stderr, "qurk-load: rerun:", err)
				os.Exit(1)
			}
			if rep.HITs != again.HITs || rep.Assignments != again.Assignments ||
				rep.Spent != again.Spent || rep.Makespan != again.Makespan ||
				rep.PassedKeysFNV != again.PassedKeysFNV || rep.InferBaseFNV != again.InferBaseFNV ||
				rep.InferBaseHITs != again.InferBaseHITs || rep.InferBaseAssignments != again.InferBaseAssignments ||
				rep.InferBaseSpent != again.InferBaseSpent || rep.InferExtensions != again.InferExtensions ||
				rep.InferSavedCents != again.InferSavedCents {
				fmt.Fprintf(os.Stderr, "qurk-load: NONDETERMINISTIC\nfirst:\n%s\nsecond:\n%s", rep, again)
				os.Exit(1)
			}
			fmt.Print(again)
			fmt.Printf("verify: rerun-identical; adaptive inference bought %d assignments vs %d fixed-redundancy (%v cheaper) at an identical result fingerprint\n",
				rep.Assignments, rep.InferBaseAssignments, rep.InferBaseSpent-rep.Spent)
			return
		}
		if cfg.Workload == load.WorkloadStreaming {
			// Cancellation lands at a racy real-time moment, so the HIT
			// totals legitimately vary; the completed prefix — the rows
			// the caller actually received before cancel — must not.
			if err := checkStreaming(again); err != nil {
				fmt.Fprintln(os.Stderr, "qurk-load: rerun:", err)
				os.Exit(1)
			}
			if rep.PassedKeysFNV != again.PassedKeysFNV || rep.Delivered != again.Delivered {
				fmt.Fprintf(os.Stderr, "qurk-load: PREFIX DRIFT\nfirst:\n%s\nsecond:\n%s", rep, again)
				os.Exit(1)
			}
			fmt.Print(again)
			fmt.Printf("verify: completed prefix rerun-identical (%d rows, fingerprint %016x)\n",
				rep.Delivered, rep.PassedKeysFNV)
			return
		}
		if cfg.Workload == load.WorkloadMultiTenant {
			// Packing (HIT counts, latencies) depends on how the racy
			// interleaving pooled partial batches; the results and the
			// money must not. The rerun pins the fingerprints; a
			// sharing-off baseline then pins the saving. (Each run also
			// self-audits that per-query sunk costs sum to the account.)
			if err := sameTenantResults(rep, again); err != nil {
				fmt.Fprintf(os.Stderr, "qurk-load: RERUN DRIFT: %v\nfirst:\n%s\nsecond:\n%s", err, rep, again)
				os.Exit(1)
			}
			if !cfg.NoShare {
				base := cfg
				base.NoShare = true
				baseline, err := load.Run(base)
				if err != nil {
					fmt.Fprintln(os.Stderr, "qurk-load: baseline:", err)
					os.Exit(1)
				}
				if err := sameTenantResults(rep, baseline); err != nil {
					fmt.Fprintf(os.Stderr, "qurk-load: SHARING CHANGED RESULTS: %v\nshared:\n%s\nbaseline:\n%s", err, rep, baseline)
					os.Exit(1)
				}
				if rep.HITs >= baseline.HITs {
					fmt.Fprintf(os.Stderr, "qurk-load: sharing saved nothing: %d HITs vs baseline %d\n", rep.HITs, baseline.HITs)
					os.Exit(1)
				}
				fmt.Printf("verify: %d queries rerun-identical; sharing posted %d HITs vs %d unshared (%d saved, %v cheaper)\n",
					rep.Config.Queries, rep.HITs, baseline.HITs, baseline.HITs-rep.HITs, baseline.Spent-rep.Spent)
				return
			}
			fmt.Printf("verify: %d queries rerun-identical (combined fingerprint %016x)\n", rep.Config.Queries, rep.PassedKeysFNV)
			return
		}
		if rep.HITs != again.HITs || rep.Spent != again.Spent || rep.Makespan != again.Makespan ||
			rep.P50 != again.P50 || rep.P99 != again.P99 || rep.Passed != again.Passed ||
			rep.JoinPairs != again.JoinPairs || rep.PassedKeysFNV != again.PassedKeysFNV {
			fmt.Fprintf(os.Stderr, "qurk-load: NONDETERMINISTIC\nfirst:\n%s\nsecond:\n%s", rep, again)
			os.Exit(1)
		}
		fmt.Println("verify: identical virtual-time metrics across reruns")
	}
}

// sameTenantResults asserts two multitenant runs produced the same
// results: every query's passed-keys fingerprint and the combined
// fingerprint must match (HIT packing may differ — results may not).
func sameTenantResults(a, b load.Report) error {
	if len(a.PerQueryFNV) != len(b.PerQueryFNV) {
		return fmt.Errorf("query counts differ: %d vs %d", len(a.PerQueryFNV), len(b.PerQueryFNV))
	}
	for i := range a.PerQueryFNV {
		if a.PerQueryFNV[i] != b.PerQueryFNV[i] {
			return fmt.Errorf("query %d fingerprint %016x vs %016x", i, a.PerQueryFNV[i], b.PerQueryFNV[i])
		}
	}
	if a.PassedKeysFNV != b.PassedKeysFNV || a.Passed != b.Passed {
		return fmt.Errorf("combined fingerprint %016x (%d passed) vs %016x (%d passed)",
			a.PassedKeysFNV, a.Passed, b.PassedKeysFNV, b.Passed)
	}
	return nil
}

// checkSort asserts the sort workload's contracts on its seed-pinned
// near-perfect crowd: top-k pushdown pays strictly fewer comparison
// HITs than full ordering, the hybrid pays strictly fewer than
// compare-only while reproducing its exact final order, and the
// tournament's top k equals the full ordering's first k.
func checkSort(rep load.Report) error {
	if rep.SortTopKHITs >= rep.SortCompareHITs {
		return fmt.Errorf("top-%d paid %d comparison HITs, full ordering paid %d",
			rep.Config.TopK, rep.SortTopKHITs, rep.SortCompareHITs)
	}
	if rep.SortHybridHITs >= rep.SortCompareHITs {
		return fmt.Errorf("hybrid paid %d HITs, compare-only paid %d", rep.SortHybridHITs, rep.SortCompareHITs)
	}
	if rep.SortHybridFNV != rep.SortOrderFNV {
		return fmt.Errorf("hybrid order %016x differs from compare order %016x",
			rep.SortHybridFNV, rep.SortOrderFNV)
	}
	if rep.SortTopKFNV != rep.SortTopKBaseFNV {
		return fmt.Errorf("top-%d order %016x differs from the full ordering's first %d (%016x)",
			rep.Config.TopK, rep.SortTopKFNV, rep.Config.TopK, rep.SortTopKBaseFNV)
	}
	return nil
}

// checkHybrid asserts the hybridcrowd workload's contracts on its
// seed-pinned perfect crowd and ground-truth model: the routed phase
// must reproduce the sim-only phase's result set exactly, both backends
// must actually serve HITs (it is a hybrid, not a wholesale switch), and
// routing must spend strictly less than the all-human baseline, with a
// positive booked saving.
func checkHybrid(rep load.Report) error {
	if rep.PassedKeysFNV != rep.HybridSimFNV || rep.HybridSimFNV == 0 {
		return fmt.Errorf("routed fingerprint %016x differs from sim-only %016x",
			rep.PassedKeysFNV, rep.HybridSimFNV)
	}
	if rep.BackendLLMHITs == 0 || rep.BackendSimHITs == 0 {
		return fmt.Errorf("not a hybrid: %d sim HITs, %d llm HITs", rep.BackendSimHITs, rep.BackendLLMHITs)
	}
	if rep.Spent >= rep.HybridSimSpent {
		return fmt.Errorf("routing saved nothing: spent %v vs sim-only %v", rep.Spent, rep.HybridSimSpent)
	}
	if rep.RoutedSavedCents <= 0 {
		return fmt.Errorf("router booked no savings (spent %v vs sim-only %v)", rep.Spent, rep.HybridSimSpent)
	}
	return nil
}

// checkInference asserts the inference workload's contracts on its
// seed-pinned perfect crowd: the adaptive EM phase must reproduce the
// majority baseline's result set exactly, buy strictly fewer assignments
// and spend strictly less, with a positive booked saving.
func checkInference(rep load.Report) error {
	if rep.PassedKeysFNV != rep.InferBaseFNV || rep.InferBaseFNV == 0 {
		return fmt.Errorf("adaptive fingerprint %016x differs from majority baseline %016x",
			rep.PassedKeysFNV, rep.InferBaseFNV)
	}
	if rep.Assignments >= rep.InferBaseAssignments {
		return fmt.Errorf("adaptive inference saved nothing: %d assignments vs baseline %d",
			rep.Assignments, rep.InferBaseAssignments)
	}
	if rep.Spent >= rep.InferBaseSpent {
		return fmt.Errorf("adaptive inference spent %v, baseline %v", rep.Spent, rep.InferBaseSpent)
	}
	if rep.InferSavedCents <= 0 {
		return fmt.Errorf("no savings booked (spent %v vs baseline %v)", rep.Spent, rep.InferBaseSpent)
	}
	return nil
}

// checkStreaming asserts the streaming workload's two contracts: the
// cursor streamed (first row strictly before the run's end) and, when
// cancellation was requested, posting stopped dead afterwards.
func checkStreaming(rep load.Report) error {
	// With fewer than two delivered rows there is no "earlier" HIT for
	// the first row to precede — a one-row run ends when it starts.
	if rep.Delivered > 1 && rep.FirstRow >= rep.Makespan {
		return fmt.Errorf("first row at %.2f vmin did not precede makespan %.2f vmin",
			rep.FirstRow.Minutes(), rep.Makespan.Minutes())
	}
	// Posting must stop dead at cancellation. The only tolerated
	// exception: a submitter goroutine already past its scope check when
	// Cancel landed may complete one post (immediately expired and
	// refunded via registerHIT → cancelInflightHIT). At most two
	// goroutines submit concurrently in this workload (the filter
	// operator and the clock pump), so anything beyond 2 means a
	// submission path is missing the scope check. In practice the
	// measured value is 0 — the report prints it.
	const postCancelRaceSlack = 2
	if rep.Config.CancelAfter > 0 && rep.HITsAfterCancel > postCancelRaceSlack {
		return fmt.Errorf("%d HITs posted after cancellation (race allowance %d)",
			rep.HITsAfterCancel, postCancelRaceSlack)
	}
	return nil
}
